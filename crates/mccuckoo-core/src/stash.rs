//! Off-chip stash structures (§III.E of the paper).
//!
//! McCuckoo keeps its stash in the abundant off-chip memory — the paper's
//! point is that the counter + flag pre-screening makes stash *visits* so
//! rare that the stash can be large and off-chip without hurting lookups.
//! Two organisations are provided:
//!
//! * [`Stash::Linear`] — an unbounded vector, scanned linearly. One
//!   conceptual stash access per visit (visits are the rare event; the
//!   paper's Tables II–III count visits).
//! * [`Stash::Hashed`] — open-addressing hash ("we can use more advanced
//!   hash techniques to construct the stash, so that checking it can be
//!   finished with minimal access"); probes are metered individually.
//!
//! The 1-bit per-bucket *flags* that pre-screen stash checks live with the
//! main-table buckets, not here (they travel with ordinary bucket reads).

use hash_kit::KeyHash;
use mem_model::MemMeter;

use crate::config::StashPolicy;

/// Off-chip stash holding items that failed insertion.
#[derive(Debug)]
pub enum Stash<K, V> {
    /// No stash configured.
    None,
    /// Linear-scan stash.
    Linear(Vec<(K, V)>),
    /// Open-addressing stash (linear probing, grows at 70% load).
    Hashed(HashedStash<K, V>),
}

impl<K: KeyHash + Eq, V> Stash<K, V> {
    /// Build from policy.
    pub fn new(policy: StashPolicy) -> Self {
        match policy {
            StashPolicy::None => Stash::None,
            StashPolicy::Linear => Stash::Linear(Vec::new()),
            StashPolicy::Hashed => Stash::Hashed(HashedStash::new()),
        }
    }

    /// Whether a stash exists at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, Stash::None)
    }

    /// Number of stashed items.
    pub fn len(&self) -> usize {
        match self {
            Stash::None => 0,
            Stash::Linear(v) => v.len(),
            Stash::Hashed(h) => h.len,
        }
    }

    /// True if no items are stashed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Store a failed item. Returns `false` (item handed back via the
    /// caller) only when no stash is configured.
    pub fn push(&mut self, key: K, value: V, meter: &MemMeter) -> Result<(), (K, V)> {
        match self {
            Stash::None => Err((key, value)),
            Stash::Linear(v) => {
                meter.stash_write(1);
                v.push((key, value));
                Ok(())
            }
            Stash::Hashed(h) => {
                h.insert(key, value, meter);
                Ok(())
            }
        }
    }

    /// Look up a key; meters one visit plus structure-specific reads.
    pub fn get(&self, key: &K, meter: &MemMeter) -> Option<&V> {
        meter.stash_visit();
        match self {
            Stash::None => None,
            Stash::Linear(v) => {
                meter.stash_read(1);
                v.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            Stash::Hashed(h) => h.get(key, meter),
        }
    }

    /// Remove a key; meters one visit plus structure-specific accesses.
    pub fn remove(&mut self, key: &K, meter: &MemMeter) -> Option<V> {
        meter.stash_visit();
        match self {
            Stash::None => None,
            Stash::Linear(v) => {
                meter.stash_read(1);
                let pos = v.iter().position(|(k, _)| k == key)?;
                meter.stash_write(1);
                Some(v.swap_remove(pos).1)
            }
            Stash::Hashed(h) => h.remove(key, meter),
        }
    }

    /// Drain all items (used by `refresh_stash`, which re-inserts them).
    pub fn drain_all(&mut self) -> Vec<(K, V)> {
        match self {
            Stash::None => Vec::new(),
            Stash::Linear(v) => std::mem::take(v),
            Stash::Hashed(h) => h.drain_all(),
        }
    }

    /// Iterate stashed items.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (&K, &V)> + '_> {
        match self {
            Stash::None => Box::new(std::iter::empty()),
            Stash::Linear(v) => Box::new(v.iter().map(|(k, v)| (k, v))),
            Stash::Hashed(h) => Box::new(
                h.slots
                    .iter()
                    .filter_map(|s| s.as_ref().map(|(k, v)| (k, v))),
            ),
        }
    }
}

/// Open-addressing stash: linear probing, power-of-two capacity, grows at
/// 70% load. Deletions use backward-shift so probe chains stay intact
/// without tombstones.
#[derive(Debug)]
pub struct HashedStash<K, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
}

const STASH_SEED: u64 = 0x57A5_4B17_1355_AA3C;
const INITIAL_CAPACITY: usize = 16;

impl<K: KeyHash + Eq, V> HashedStash<K, V> {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(INITIAL_CAPACITY);
        slots.resize_with(INITIAL_CAPACITY, || None);
        Self { slots, len: 0 }
    }

    #[inline]
    fn home(&self, key: &K) -> usize {
        (key.hash_seeded(STASH_SEED) as usize) & (self.slots.len() - 1)
    }

    fn insert(&mut self, key: K, value: V, meter: &MemMeter) {
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow(meter);
        }
        let mut i = self.home(&key);
        loop {
            meter.stash_read(1);
            if self.slots[i].is_none() {
                meter.stash_write(1);
                self.slots[i] = Some((key, value));
                self.len += 1;
                return;
            }
            i = (i + 1) & (self.slots.len() - 1);
        }
    }

    fn get(&self, key: &K, meter: &MemMeter) -> Option<&V> {
        let mut i = self.home(key);
        loop {
            meter.stash_read(1);
            match &self.slots[i] {
                None => return None,
                Some((k, v)) if k == key => return Some(v),
                _ => i = (i + 1) & (self.slots.len() - 1),
            }
        }
    }

    fn remove(&mut self, key: &K, meter: &MemMeter) -> Option<V> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            meter.stash_read(1);
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if k == key => break,
                _ => i = (i + 1) & mask,
            }
        }
        let (_, value) = self.slots[i].take().unwrap();
        meter.stash_write(1);
        self.len -= 1;
        // Backward-shift deletion: slide the cluster left.
        let mut j = (i + 1) & mask;
        loop {
            meter.stash_read(1);
            let Some((k, _)) = &self.slots[j] else { break };
            let home = self.home(k);
            // Can j's occupant legally move to i? Only if its home does
            // not lie strictly inside (i, j].
            let between = if i <= j {
                home > i && home <= j
            } else {
                home > i || home <= j
            };
            if !between {
                self.slots[i] = self.slots[j].take();
                meter.stash_write(2);
                i = j;
            }
            j = (j + 1) & mask;
        }
        Some(value)
    }

    fn grow(&mut self, meter: &MemMeter) {
        let new_cap = self.slots.len() * 2;
        let old: Vec<(K, V)> = self.drain_all();
        self.slots.resize_with(new_cap, || None);
        self.len = 0;
        for (k, v) in old {
            self.insert(k, v, meter);
        }
    }

    fn drain_all(&mut self) -> Vec<(K, V)> {
        let out: Vec<(K, V)> = self.slots.iter_mut().filter_map(|s| s.take()).collect();
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_kit::SplitMix64;
    use std::collections::HashMap;

    fn meter() -> MemMeter {
        MemMeter::new()
    }

    #[test]
    fn none_stash_rejects_pushes() {
        let m = meter();
        let mut s: Stash<u64, u64> = Stash::new(StashPolicy::None);
        assert!(!s.enabled());
        assert_eq!(s.push(1, 2, &m), Err((1, 2)));
        assert_eq!(s.get(&1, &m), None);
    }

    #[test]
    fn linear_stash_roundtrip() {
        let m = meter();
        let mut s: Stash<u64, u64> = Stash::new(StashPolicy::Linear);
        for k in 0..100u64 {
            s.push(k, k * 2, &m).unwrap();
        }
        assert_eq!(s.len(), 100);
        for k in 0..100u64 {
            assert_eq!(s.get(&k, &m), Some(&(k * 2)));
        }
        assert_eq!(s.get(&1000, &m), None);
        for k in 0..100u64 {
            assert_eq!(s.remove(&k, &m), Some(k * 2));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn hashed_stash_roundtrip() {
        let m = meter();
        let mut s: Stash<u64, u64> = Stash::new(StashPolicy::Hashed);
        for k in 0..1000u64 {
            s.push(k, k + 1, &m).unwrap();
        }
        assert_eq!(s.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(s.get(&k, &m), Some(&(k + 1)));
        }
        assert_eq!(s.get(&5000, &m), None);
    }

    #[test]
    fn hashed_stash_differential_with_removals() {
        let m = meter();
        let mut s: Stash<u64, u64> = Stash::new(StashPolicy::Hashed);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(5);
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            match rng.next_below(3) {
                0 => {
                    let k = rng.next_u64() >> 40; // narrow range → collisions
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                        s.push(k, k ^ 1, &m).unwrap();
                        e.insert(k ^ 1);
                        live.push(k);
                    }
                }
                1 if !live.is_empty() => {
                    let i = rng.next_below(live.len() as u64) as usize;
                    let k = live[i];
                    assert_eq!(s.get(&k, &m), model.get(&k));
                }
                2 if !live.is_empty() => {
                    let i = rng.next_below(live.len() as u64) as usize;
                    let k = live.swap_remove(i);
                    assert_eq!(s.remove(&k, &m), model.remove(&k));
                }
                _ => {}
            }
        }
        assert_eq!(s.len(), model.len());
        for (k, v) in &model {
            assert_eq!(s.get(k, &m), Some(v));
        }
    }

    #[test]
    fn hashed_probe_counts_stay_small() {
        // At ≤70% load with linear probing, mean probes should be low.
        let m = meter();
        let mut s: Stash<u64, u64> = Stash::new(StashPolicy::Hashed);
        for k in 0..500u64 {
            s.push(k, k, &m).unwrap();
        }
        let before = m.snapshot();
        for k in 0..500u64 {
            assert!(s.get(&k, &m).is_some());
        }
        let delta = m.snapshot() - before;
        let mean_probes = delta.stash_reads as f64 / 500.0;
        assert!(mean_probes < 3.0, "mean probes {mean_probes}");
    }

    #[test]
    fn visits_are_counted_per_operation() {
        let m = meter();
        let s: Stash<u64, u64> = Stash::new(StashPolicy::Linear);
        let _ = s.get(&1, &m);
        let _ = s.get(&2, &m);
        assert_eq!(m.snapshot().stash_visits, 2);
    }

    #[test]
    fn drain_all_empties_both_kinds() {
        let m = meter();
        for policy in [StashPolicy::Linear, StashPolicy::Hashed] {
            let mut s: Stash<u64, u64> = Stash::new(policy);
            for k in 0..50u64 {
                s.push(k, k, &m).unwrap();
            }
            let mut drained = s.drain_all();
            drained.sort_unstable();
            assert_eq!(
                drained,
                (0u64..50).map(|k| (k, k)).collect::<Vec<_>>(),
                "{policy:?}"
            );
            assert!(s.is_empty());
        }
    }

    #[test]
    fn iter_matches_contents() {
        let m = meter();
        let mut s: Stash<u64, u64> = Stash::new(StashPolicy::Hashed);
        for k in 0..30u64 {
            s.push(k, k * 3, &m).unwrap();
        }
        let mut got: Vec<u64> = s.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        assert_eq!(got, (0u64..30).collect::<Vec<_>>());
    }
}
