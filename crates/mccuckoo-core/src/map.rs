//! [`McMap`] — a `HashMap`-shaped convenience wrapper with automatic
//! growth.
//!
//! The raw [`McCuckoo`] table is fixed-capacity by design (the paper's
//! setting: a hardware table sized at deployment, overflowing into a
//! stash). Software adopters usually want a map that *just grows*. This
//! wrapper provides that: inserts that stash, or a stash exceeding a
//! small fraction of capacity, trigger a doubling rehash — the
//! classical remedy, applied rarely enough to amortise.
//!
//! Growth is **total**: a rehash that overflows (possible with
//! [`crate::StashPolicy::None`], or under an adversarial seed) retries
//! with the next derived seed a bounded number of times, and anything
//! still unplaced is *parked* in a side buffer that every read, write,
//! and iteration consults — the map never aborts and never loses an
//! item. [`McMap::grow_now`] surfaces the condition as a typed
//! [`GrowError`] for callers that want to react.

use std::fmt;

use hash_kit::KeyHash;
use mem_model::{InsertOutcome, InsertReport, MemStats};

use crate::config::{DeletionMode, McConfig};
use crate::obs::TableStats;
use crate::persist::TableSnapshot;
use crate::single::McCuckoo;
use crate::table::McTable;

/// Stash occupancy (relative to capacity) that triggers a growth rehash.
const GROW_AT_STASH_FRACTION: f64 = 0.002;

/// How many fresh derived seeds a single growth tries before parking
/// the stragglers. Each retry redraws every hash function, so repeated
/// failure means the table is genuinely overfull for its geometry (the
/// first attempt already doubled it) — more retries would thrash.
const GROW_RETRIES: usize = 3;

/// A growth pass that could not re-place every item after
/// `GROW_RETRIES` reseeded attempts. **Nothing is lost**: the
/// stragglers are parked in a side buffer the map keeps consulting, and
/// the next growth re-offers them first. Returned by
/// [`McMap::grow_now`]; automatic growths park silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowError {
    /// Reseeded rehash attempts that were made.
    pub attempts: usize,
    /// Items left in the parked side buffer afterwards.
    pub parked: usize,
}

impl fmt::Display for GrowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "growth could not place {} item(s) after {} reseeded attempts; \
             they remain served from the parked buffer",
            self.parked, self.attempts
        )
    }
}

impl std::error::Error for GrowError {}

/// An auto-growing map backed by a multi-copy cuckoo table.
///
/// ```
/// use mccuckoo_core::McMap;
///
/// let mut m: McMap<&str, u32> = McMap::new();
/// assert!(m.insert("a", 1));      // new key
/// assert!(!m.insert("a", 2));     // update
/// assert_eq!(m.get(&"a"), Some(&2));
/// assert_eq!(m.remove(&"a"), Some(2));
/// assert!(m.is_empty());
/// ```
#[derive(Debug)]
pub struct McMap<K, V> {
    table: McCuckoo<K, V>,
    grow_seed: u64,
    /// Items a failed growth could not re-place (stash-less tables
    /// only). Every operation consults this buffer, and every growth
    /// re-offers it first, so parked items are fully live — just slow.
    parked: Vec<(K, V)>,
}

impl<K: KeyHash + Eq + Clone, V: Clone> Default for McMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> McMap<K, V> {
    /// An empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// A map that can hold at least `items` before its first growth
    /// (sized to ~85% load). The hash seed is drawn from process
    /// entropy in normal builds (a fixed well-known seed would let an
    /// adversary precompute colliding key sets); unit tests and doc
    /// builds pin it for reproducibility. Use
    /// [`Self::with_capacity_and_seed`] to control it explicitly.
    pub fn with_capacity(items: usize) -> Self {
        Self::with_capacity_and_seed(items, Self::default_seed())
    }

    /// A map sized like [`Self::with_capacity`] but with an explicit
    /// hash seed. The rehash seed stream used on growth is derived from
    /// `seed`, so two maps built with the same seed stay byte-for-byte
    /// reproducible through any number of growths.
    pub fn with_capacity_and_seed(items: usize, seed: u64) -> Self {
        let per_table = (items as f64 / 3.0 / 0.85).ceil() as usize;
        Self::with_config(
            McConfig::paper(per_table.max(8), seed).with_deletion(DeletionMode::Reset),
        )
    }

    /// A map over an explicit table configuration — stash policy,
    /// deletion mode, kick policy and maxloop included. Growth works
    /// for every configuration: a stash-less table that overflows a
    /// rehash parks the stragglers instead of aborting (see
    /// [`GrowError`]).
    pub fn with_config(config: McConfig) -> Self {
        // Decorrelated from the table seed so growth never rehashes
        // into the hash functions it is escaping.
        let grow_seed = config.seed ^ 0x9E37_79B9_7F4A_7C15;
        Self {
            table: McCuckoo::new(config),
            grow_seed,
            parked: Vec::new(),
        }
    }

    #[cfg(any(test, doctest))]
    fn default_seed() -> u64 {
        0x4CAF_F1E1_D5EA_7B3D
    }

    #[cfg(not(any(test, doctest)))]
    fn default_seed() -> u64 {
        use std::hash::{BuildHasher, Hasher};
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    }

    /// Number of stored keys (parked stragglers included).
    pub fn len(&self) -> usize {
        self.table.len() + self.parked.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty() && self.parked.is_empty()
    }

    /// Items currently served from the parked side buffer (non-zero
    /// only after a growth overflowed all its retries; see
    /// [`GrowError`]).
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Insert or update; returns the previous presence (like
    /// `HashMap::insert` returning whether the key was new).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.insert_report(key, value).outcome != InsertOutcome::Updated
    }

    /// [`Self::insert`] returning the table's full [`InsertReport`].
    /// A `Stashed` outcome describes the pre-growth placement; the item
    /// is in the main table by the time this returns.
    fn insert_report(&mut self, key: K, value: V) -> InsertReport {
        // A parked copy is the authoritative one; update it in place —
        // and record the update, so the parked detour stays visible to
        // `stats()` like any other operation.
        if let Some(slot) = self.parked.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
            let report = InsertReport {
                outcome: InsertOutcome::Updated,
                kickouts: 0,
                collision: false,
                copies_written: 0,
            };
            self.table.obs().record_insert(&report);
            return report;
        }
        // Unrecorded: a full-table `Err` below is rescued by growth, so
        // the outcome the inner table saw may not be the outcome the
        // caller gets. Record the final report exactly once, here.
        let report = match self.table.insert_unrecorded(key, value) {
            Ok(r) => r,
            // Stash-less table full. The failed kick walk placed the
            // offered pair and handed back whatever fell off the end of
            // the walk (which may be the offered pair itself): grow,
            // carrying the evictee — it is re-placed or parked, never
            // dropped — then report the insert as stored.
            Err(full) => {
                let mut report = full.report;
                report.outcome = InsertOutcome::Placed;
                self.table.obs().record_insert(&report);
                let _ = self.grow_carrying(vec![full.evicted]);
                return report;
            }
        };
        self.table.obs().record_insert(&report);
        if report.outcome == InsertOutcome::Stashed || self.stash_pressure() {
            let _ = self.grow_carrying(Vec::new());
        }
        report
    }

    fn stash_pressure(&self) -> bool {
        self.table.stash_len() as f64
            > (self.table.capacity() as f64 * GROW_AT_STASH_FRACTION).max(4.0)
    }

    /// Force a growth rehash now, surfacing the overflow condition that
    /// automatic growths park silently. `Ok` also means previously
    /// parked items were re-absorbed into the table.
    pub fn grow_now(&mut self) -> Result<(), GrowError> {
        self.grow_carrying(Vec::new())
    }

    /// One growth pass: double the table under the next derived seed,
    /// then re-offer `pending` plus everything previously parked. Each
    /// overflow hands its leftovers to the next reseeded attempt
    /// (bounded by `GROW_RETRIES`); stragglers end up parked, never
    /// dropped, never a panic.
    fn grow_carrying(&mut self, mut pending: Vec<(K, V)>) -> Result<(), GrowError> {
        pending.append(&mut self.parked);
        for attempt in 0..GROW_RETRIES {
            self.grow_seed = self
                .grow_seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1);
            // The first attempt doubles; retries re-draw the hash
            // functions at the doubled size (a second doubling for a
            // seed problem would waste memory without fixing anything).
            let result = if attempt == 0 {
                self.table.grow(self.grow_seed)
            } else {
                self.table.rehash(None, self.grow_seed)
            };
            if let Err(overflow) = result {
                pending.extend(overflow.leftover);
                continue;
            }
            // Rebuilt table: re-offer the carried items. Unrecorded —
            // each was already counted when the user first inserted it.
            let mut still = Vec::new();
            for (k, v) in pending.drain(..) {
                if let Err(full) = self.table.insert_new_unrecorded(k, v) {
                    still.push(full.evicted);
                }
            }
            if still.is_empty() {
                return Ok(());
            }
            pending = still;
        }
        let parked = pending.len();
        self.parked = pending;
        Err(GrowError {
            attempts: GROW_RETRIES,
            parked,
        })
    }

    /// Get a reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        // A parked key is never also in the table, so consult the side
        // buffer first: a parked hit must be recorded as a lookup hit,
        // not as the table miss the inner probe would log.
        if let Some((_, v)) = self.parked.iter().find(|(k, _)| k == key) {
            self.table.obs().record_lookup(true, 0);
            return Some(v);
        }
        self.table.get(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        // Same ordering as `get`: a parked removal is a remove hit and
        // must not leave a spurious `remove_misses` in the table stats.
        if let Some(at) = self.parked.iter().position(|(k, _)| k == key) {
            self.table.obs().record_remove(true);
            return Some(self.parked.swap_remove(at).1);
        }
        self.table.remove(key)
    }

    /// Iterate `(key, value)` pairs (parked stragglers included).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.table
            .iter()
            .chain(self.parked.iter().map(|(k, v)| (k, v)))
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.table.clear();
        self.parked.clear();
    }

    /// Capture a logical snapshot of the map — parked stragglers
    /// included, so a map that overflowed a growth round-trips without
    /// losing anything. The format is the plain [`TableSnapshot`]:
    /// parked items are appended to `items` (a snapshot is logical and
    /// unordered, so they are indistinguishable from table residents)
    /// and simply re-offered on restore.
    pub fn to_snapshot(&self) -> TableSnapshot<K, V> {
        let mut snap = self.table.to_snapshot();
        snap.items
            .extend(self.parked.iter().map(|(k, v)| (k.clone(), v.clone())));
        snap
    }

    /// Rebuild a map from a snapshot. Restores are **total**: items the
    /// rebuilt table cannot place (a stash-less overfull snapshot) are
    /// parked — served, counted, re-offered to the next growth — never
    /// dropped. That is why this restore, unlike
    /// [`McCuckoo::try_from_snapshot`], has no error to return.
    pub fn from_snapshot(snapshot: TableSnapshot<K, V>) -> Self {
        let mut m = Self::with_config(snapshot.config.clone());
        for (k, v) in snapshot.items {
            // Unrecorded: each item was counted when first inserted.
            if let Err(full) = m.table.insert_new_unrecorded(k, v) {
                m.parked.push(full.evicted);
            }
        }
        m
    }

    /// Access the underlying table (metering, diagnostics).
    pub fn table(&self) -> &McCuckoo<K, V> {
        &self.table
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> McTable<K, V> for McMap<K, V> {
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        self.insert_report(key, value)
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        // Unrecorded for the same reason as the upsert path: the final
        // outcome after a growth rescue is recorded here, exactly once.
        let report = match self.table.insert_new_unrecorded(key, value) {
            Ok(r) => r,
            // Same recovery as the upsert path: the walk placed the
            // offered pair; grow carrying the evictee.
            Err(full) => {
                let mut report = full.report;
                report.outcome = InsertOutcome::Placed;
                self.table.obs().record_insert(&report);
                let _ = self.grow_carrying(vec![full.evicted]);
                return report;
            }
        };
        self.table.obs().record_insert(&report);
        if report.outcome == InsertOutcome::Stashed || self.stash_pressure() {
            let _ = self.grow_carrying(Vec::new());
        }
        report
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key).cloned()
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        McMap::remove(self, key)
    }

    fn clear(&mut self) {
        McMap::clear(self);
    }

    fn len(&self) -> usize {
        McMap::len(self)
    }

    fn capacity(&self) -> usize {
        McMap::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        self.contains_key(key)
    }

    fn stash_len(&self) -> usize {
        self.table.stash_len()
    }

    fn refresh_stash(&mut self) -> usize {
        self.table.refresh_stash()
    }

    fn mem_stats(&self) -> MemStats {
        self.table.meter().snapshot()
    }

    fn stats(&self) -> TableStats {
        self.table.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    // Scaled down under `paranoid`: every insert validates the whole
    // table, so the volume tests would go quadratic.
    #[cfg(feature = "paranoid")]
    const SCALE: usize = 20;
    #[cfg(not(feature = "paranoid"))]
    const SCALE: usize = 1;

    #[test]
    fn grows_far_beyond_initial_capacity() {
        let mut m: McMap<u64, u64> = McMap::with_capacity(100);
        let initial_cap = m.capacity();
        let mut keys = UniqueKeys::new(1);
        let ks = keys.take_vec(50_000 / SCALE);
        for &k in &ks {
            assert!(m.insert(k, k));
        }
        assert!(m.capacity() > initial_cap, "map must have grown");
        assert_eq!(m.len(), ks.len());
        for &k in &ks {
            assert_eq!(m.get(&k), Some(&k));
        }
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn insert_reports_newness() {
        let mut m: McMap<u64, &str> = McMap::new();
        assert!(m.insert(1, "a"));
        assert!(!m.insert(1, "b"));
        assert_eq!(m.get(&1), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn differential_against_hashmap() {
        let mut m: McMap<u64, u64> = McMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = hash_kit::SplitMix64::new(3);
        for step in 0..60_000u64 / SCALE as u64 {
            let k = rng.next_below(20_000 / SCALE as u64);
            match rng.next_below(4) {
                0 | 1 => {
                    assert_eq!(m.insert(k, step), model.insert(k, step).is_none());
                }
                2 => assert_eq!(m.get(&k), model.get(&k)),
                _ => assert_eq!(m.remove(&k), model.remove(&k)),
            }
        }
        assert_eq!(m.len(), model.len());
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v));
        }
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn clear_empties_and_map_remains_usable() {
        let mut m: McMap<u64, u64> = McMap::new();
        for k in 0..1000u64 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&5), None);
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.get(&5), Some(&10));
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn explicit_seed_is_reproducible_through_growth() {
        let build = |seed: u64| {
            let mut m: McMap<u64, u64> = McMap::with_capacity_and_seed(32, seed);
            for k in 0..3_000u64 / SCALE as u64 {
                m.insert(k, k);
            }
            m
        };
        let (a, b) = (build(77), build(77));
        assert_eq!(a.capacity(), b.capacity());
        let collect = |m: &McMap<u64, u64>| {
            let mut v: Vec<(u64, u64)> = m.iter().map(|(k, x)| (*k, *x)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(collect(&a), collect(&b));
        // A different seed draws a different grow-seed stream too.
        let c = build(78);
        assert_eq!(a.len(), c.len());
        assert_ne!(
            a.table().config_snapshot().seed,
            c.table().config_snapshot().seed
        );
    }

    #[test]
    fn mctable_impl_reports_and_counts() {
        use crate::table::McTable;
        let mut m: McMap<u64, u64> = McMap::with_capacity_and_seed(256, 5);
        for k in 0..200u64 {
            assert!(McTable::insert_new(&mut m, k, k).stored());
        }
        let r = McTable::insert(&mut m, 7, 70);
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(McTable::lookup(&m, &7), Some(70));
        assert_eq!(McTable::remove(&mut m, &7), Some(70));
        let s = McTable::stats(&m);
        assert_eq!(s.ops.inserts, 200);
        assert_eq!(s.ops.updates, 1);
        assert_eq!(s.ops.removes, 1);
        assert!(s.kick_hist.count >= 200);
    }

    #[test]
    fn stashless_config_grows_without_aborting() {
        use crate::config::StashPolicy;
        // The config the old code aborted on: no stash to absorb failed
        // walks, a tiny table, and a short maxloop so walks fail often.
        let mut m: McMap<u64, u64> = McMap::with_config(
            McConfig::paper(8, 21)
                .with_stash(StashPolicy::None)
                .with_maxloop(8)
                .with_deletion(DeletionMode::Reset),
        );
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = hash_kit::SplitMix64::new(22);
        for step in 0..6_000u64 / SCALE as u64 {
            let k = rng.next_below(2_000 / SCALE as u64);
            match rng.next_below(4) {
                0 | 1 => {
                    assert_eq!(m.insert(k, step), model.insert(k, step).is_none());
                }
                2 => assert_eq!(m.get(&k), model.get(&k)),
                _ => assert_eq!(m.remove(&k), model.remove(&k)),
            }
        }
        assert_eq!(m.len(), model.len());
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v), "key {k} lost");
        }
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn grow_now_reports_and_parked_items_stay_live() {
        use crate::config::StashPolicy;
        let mut m: McMap<u64, u64> = McMap::with_config(
            McConfig::paper(8, 23)
                .with_stash(StashPolicy::None)
                .with_maxloop(8)
                .with_deletion(DeletionMode::Reset),
        );
        for k in 0..500u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 500);
        // Whether or not anything is parked right now, every item is
        // served, iterated, and countable.
        assert_eq!(m.iter().count(), 500);
        for k in 0..500u64 {
            assert_eq!(m.get(&k), Some(&(k * 2)), "key {k} lost");
            assert!(m.contains_key(&k));
        }
        // An explicit growth either absorbs the parked buffer or
        // reports a typed error — never a panic.
        match m.grow_now() {
            Ok(()) => assert_eq!(m.parked_len(), 0),
            Err(e) => {
                assert_eq!(e.parked, m.parked_len());
                assert!(e.attempts > 0);
                let msg = e.to_string();
                assert!(msg.contains("parked buffer"), "got: {msg}");
            }
        }
        assert_eq!(m.len(), 500);
        // Parked-or-not, updates and removals hit the right copy.
        assert!(!m.insert(7, 999));
        assert_eq!(m.get(&7), Some(&999));
        assert_eq!(m.remove(&7), Some(999));
        assert_eq!(m.len(), 499);
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn parked_path_operations_are_recorded_exactly_once() {
        let mut m: McMap<u64, u64> = McMap::with_capacity_and_seed(64, 9);
        for k in 0..10u64 {
            m.insert(k, k);
        }
        // Manufacture the post-overflow state directly: a parked key is
        // exactly "in the side buffer, not in the table".
        m.parked.push((1_000, 5));
        let s0 = m.table().stats();
        assert_eq!(m.len(), 11);
        assert_eq!(m.iter().count(), 11);

        assert!(!m.insert(1_000, 6)); // parked update
        assert_eq!(m.get(&1_000), Some(&6)); // parked lookup hit
        assert_eq!(m.get(&2_000), None); // genuine miss
        assert_eq!(m.remove(&1_000), Some(6)); // parked remove hit
        assert_eq!(m.remove(&1_000), None); // genuine remove miss

        let s = m.table().stats();
        assert_eq!(s.ops.updates, s0.ops.updates + 1, "parked update lost");
        assert_eq!(s.ops.inserts, s0.ops.inserts, "update counted as insert");
        assert_eq!(s.ops.lookup_hits, s0.ops.lookup_hits + 1);
        assert_eq!(
            s.ops.lookup_misses,
            s0.ops.lookup_misses + 1,
            "parked hit must not log a table miss"
        );
        assert_eq!(s.ops.removes, s0.ops.removes + 1);
        assert_eq!(s.ops.remove_misses, s0.ops.remove_misses + 1);
        assert_eq!(s.ops.failed_inserts, 0);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn growth_rescues_never_count_as_failed_inserts() {
        use crate::config::StashPolicy;
        // Stash-less + tiny + short maxloop: the inner table returns
        // `Err(McFull)` routinely and every one is rescued by growth, so
        // the user-visible failure count must stay zero and each logical
        // op must be counted exactly once.
        let mut m: McMap<u64, u64> = McMap::with_config(
            McConfig::paper(8, 31)
                .with_stash(StashPolicy::None)
                .with_maxloop(8)
                .with_deletion(DeletionMode::Reset),
        );
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = hash_kit::SplitMix64::new(32);
        let (mut new_keys, mut updates) = (0u64, 0u64);
        let (mut hits, mut misses, mut rm_hits, mut rm_misses) = (0u64, 0u64, 0u64, 0u64);
        for step in 0..4_000u64 / SCALE as u64 {
            let k = rng.next_below(1_500 / SCALE as u64);
            match rng.next_below(4) {
                0 | 1 => {
                    let was_new = model.insert(k, step).is_none();
                    if was_new {
                        new_keys += 1;
                    } else {
                        updates += 1;
                    }
                    assert_eq!(m.insert(k, step), was_new, "step {step} key {k}");
                }
                2 => {
                    let got = m.get(&k).copied();
                    assert_eq!(got, model.get(&k).copied());
                    if got.is_some() {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                }
                _ => {
                    let got = m.remove(&k);
                    assert_eq!(got, model.remove(&k));
                    if got.is_some() {
                        rm_hits += 1;
                    } else {
                        rm_misses += 1;
                    }
                }
            }
        }
        let s = m.table().stats();
        assert_eq!(s.ops.failed_inserts, 0, "rescued inserts counted as failed");
        assert_eq!(s.ops.inserts, new_keys);
        assert_eq!(s.ops.updates, updates);
        assert_eq!(s.ops.lookup_hits, hits);
        assert_eq!(s.ops.lookup_misses, misses);
        assert_eq!(s.ops.removes, rm_hits);
        assert_eq!(s.ops.remove_misses, rm_misses);
        assert_eq!(m.len(), model.len());
    }

    #[test]
    fn snapshot_round_trip_preserves_parked_keys() {
        use crate::config::StashPolicy;
        let mut m: McMap<u64, u64> = McMap::with_config(
            McConfig::paper(8, 41)
                .with_stash(StashPolicy::None)
                .with_maxloop(8)
                .with_deletion(DeletionMode::Reset),
        );
        for k in 0..300u64 {
            m.insert(k, k * 7);
        }
        // Park two keys by hand so the round-trip exercises the parked
        // buffer even on seeds where growth never overflows.
        m.parked.push((9_001, 1));
        m.parked.push((9_002, 2));
        let snap = m.to_snapshot();
        assert_eq!(
            snap.items.len(),
            m.len(),
            "parked keys missing from snapshot"
        );
        let json = jsonlite::to_string(&snap);
        let back: crate::persist::TableSnapshot<u64, u64> = jsonlite::from_str(&json).unwrap();
        let restored = McMap::from_snapshot(back);
        assert_eq!(restored.len(), m.len());
        for (k, v) in m.iter() {
            assert_eq!(restored.get(k), Some(v), "key {k} lost in round-trip");
        }
        restored.table().check_invariants().unwrap();
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut m: McMap<u64, u64> = McMap::with_capacity(1000);
        for k in 0..800u64 {
            m.insert(k, k);
        }
        let mut got: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        assert_eq!(got, (0u64..800).collect::<Vec<_>>());
    }
}
