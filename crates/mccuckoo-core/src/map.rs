//! [`McMap`] — a `HashMap`-shaped convenience wrapper with automatic
//! growth.
//!
//! The raw [`McCuckoo`] table is fixed-capacity by design (the paper's
//! setting: a hardware table sized at deployment, overflowing into a
//! stash). Software adopters usually want a map that *just grows*. This
//! wrapper provides that: inserts that stash, or a stash exceeding a
//! small fraction of capacity, trigger a doubling rehash — the
//! classical remedy, applied rarely enough to amortise.

use hash_kit::KeyHash;
use mem_model::{InsertOutcome, InsertReport, MemStats};

use crate::config::{DeletionMode, McConfig};
use crate::obs::TableStats;
use crate::single::McCuckoo;
use crate::table::McTable;

/// Stash occupancy (relative to capacity) that triggers a growth rehash.
const GROW_AT_STASH_FRACTION: f64 = 0.002;

/// An auto-growing map backed by a multi-copy cuckoo table.
///
/// ```
/// use mccuckoo_core::McMap;
///
/// let mut m: McMap<&str, u32> = McMap::new();
/// assert!(m.insert("a", 1));      // new key
/// assert!(!m.insert("a", 2));     // update
/// assert_eq!(m.get(&"a"), Some(&2));
/// assert_eq!(m.remove(&"a"), Some(2));
/// assert!(m.is_empty());
/// ```
#[derive(Debug)]
pub struct McMap<K, V> {
    table: McCuckoo<K, V>,
    grow_seed: u64,
}

impl<K: KeyHash + Eq + Clone, V: Clone> Default for McMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> McMap<K, V> {
    /// An empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// A map that can hold at least `items` before its first growth
    /// (sized to ~85% load). The hash seed is drawn from process
    /// entropy in normal builds (a fixed well-known seed would let an
    /// adversary precompute colliding key sets); unit tests and doc
    /// builds pin it for reproducibility. Use
    /// [`Self::with_capacity_and_seed`] to control it explicitly.
    pub fn with_capacity(items: usize) -> Self {
        Self::with_capacity_and_seed(items, Self::default_seed())
    }

    /// A map sized like [`Self::with_capacity`] but with an explicit
    /// hash seed. The rehash seed stream used on growth is derived from
    /// `seed`, so two maps built with the same seed stay byte-for-byte
    /// reproducible through any number of growths.
    pub fn with_capacity_and_seed(items: usize, seed: u64) -> Self {
        let per_table = (items as f64 / 3.0 / 0.85).ceil() as usize;
        let config = McConfig::paper(per_table.max(8), seed).with_deletion(DeletionMode::Reset);
        Self {
            table: McCuckoo::new(config),
            // Decorrelated from the table seed so growth never rehashes
            // into the hash functions it is escaping.
            grow_seed: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    #[cfg(any(test, doctest))]
    fn default_seed() -> u64 {
        0x4CAF_F1E1_D5EA_7B3D
    }

    #[cfg(not(any(test, doctest)))]
    fn default_seed() -> u64 {
        use std::hash::{BuildHasher, Hasher};
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Insert or update; returns the previous presence (like
    /// `HashMap::insert` returning whether the key was new).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.insert_report(key, value).outcome != InsertOutcome::Updated
    }

    /// [`Self::insert`] returning the table's full [`InsertReport`].
    /// A `Stashed` outcome describes the pre-growth placement; the item
    /// is in the main table by the time this returns.
    fn insert_report(&mut self, key: K, value: V) -> InsertReport {
        let report = match self.table.insert(key, value) {
            Ok(r) => r,
            Err(_full) => unreachable!("stash-backed insert cannot hard-fail"),
        };
        if report.outcome == InsertOutcome::Stashed || self.stash_pressure() {
            self.grow();
        }
        report
    }

    fn stash_pressure(&self) -> bool {
        self.table.stash_len() as f64
            > (self.table.capacity() as f64 * GROW_AT_STASH_FRACTION).max(4.0)
    }

    fn grow(&mut self) {
        self.grow_seed = self
            .grow_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        // Growth with a stash-backed table cannot overflow.
        let Ok(_) = self.table.grow(self.grow_seed) else {
            unreachable!("stash-backed rehash cannot overflow")
        };
    }

    /// Get a reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.table.get(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.table.contains(key)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.table.remove(key)
    }

    /// Iterate `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.table.iter()
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Access the underlying table (metering, diagnostics).
    pub fn table(&self) -> &McCuckoo<K, V> {
        &self.table
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> McTable<K, V> for McMap<K, V> {
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        self.insert_report(key, value)
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        let report = match self.table.insert_new(key, value) {
            Ok(r) => r,
            Err(_full) => unreachable!("stash-backed insert cannot hard-fail"),
        };
        if report.outcome == InsertOutcome::Stashed || self.stash_pressure() {
            self.grow();
        }
        report
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key).cloned()
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        McMap::remove(self, key)
    }

    fn clear(&mut self) {
        McMap::clear(self);
    }

    fn len(&self) -> usize {
        McMap::len(self)
    }

    fn capacity(&self) -> usize {
        McMap::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        self.contains_key(key)
    }

    fn stash_len(&self) -> usize {
        self.table.stash_len()
    }

    fn refresh_stash(&mut self) -> usize {
        self.table.refresh_stash()
    }

    fn mem_stats(&self) -> MemStats {
        self.table.meter().snapshot()
    }

    fn stats(&self) -> TableStats {
        self.table.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    // Scaled down under `paranoid`: every insert validates the whole
    // table, so the volume tests would go quadratic.
    #[cfg(feature = "paranoid")]
    const SCALE: usize = 20;
    #[cfg(not(feature = "paranoid"))]
    const SCALE: usize = 1;

    #[test]
    fn grows_far_beyond_initial_capacity() {
        let mut m: McMap<u64, u64> = McMap::with_capacity(100);
        let initial_cap = m.capacity();
        let mut keys = UniqueKeys::new(1);
        let ks = keys.take_vec(50_000 / SCALE);
        for &k in &ks {
            assert!(m.insert(k, k));
        }
        assert!(m.capacity() > initial_cap, "map must have grown");
        assert_eq!(m.len(), ks.len());
        for &k in &ks {
            assert_eq!(m.get(&k), Some(&k));
        }
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn insert_reports_newness() {
        let mut m: McMap<u64, &str> = McMap::new();
        assert!(m.insert(1, "a"));
        assert!(!m.insert(1, "b"));
        assert_eq!(m.get(&1), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn differential_against_hashmap() {
        let mut m: McMap<u64, u64> = McMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = hash_kit::SplitMix64::new(3);
        for step in 0..60_000u64 / SCALE as u64 {
            let k = rng.next_below(20_000 / SCALE as u64);
            match rng.next_below(4) {
                0 | 1 => {
                    assert_eq!(m.insert(k, step), model.insert(k, step).is_none());
                }
                2 => assert_eq!(m.get(&k), model.get(&k)),
                _ => assert_eq!(m.remove(&k), model.remove(&k)),
            }
        }
        assert_eq!(m.len(), model.len());
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v));
        }
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn clear_empties_and_map_remains_usable() {
        let mut m: McMap<u64, u64> = McMap::new();
        for k in 0..1000u64 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&5), None);
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.get(&5), Some(&10));
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn explicit_seed_is_reproducible_through_growth() {
        let build = |seed: u64| {
            let mut m: McMap<u64, u64> = McMap::with_capacity_and_seed(32, seed);
            for k in 0..3_000u64 / SCALE as u64 {
                m.insert(k, k);
            }
            m
        };
        let (a, b) = (build(77), build(77));
        assert_eq!(a.capacity(), b.capacity());
        let collect = |m: &McMap<u64, u64>| {
            let mut v: Vec<(u64, u64)> = m.iter().map(|(k, x)| (*k, *x)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(collect(&a), collect(&b));
        // A different seed draws a different grow-seed stream too.
        let c = build(78);
        assert_eq!(a.len(), c.len());
        assert_ne!(
            a.table().config_snapshot().seed,
            c.table().config_snapshot().seed
        );
    }

    #[test]
    fn mctable_impl_reports_and_counts() {
        use crate::table::McTable;
        let mut m: McMap<u64, u64> = McMap::with_capacity_and_seed(256, 5);
        for k in 0..200u64 {
            assert!(McTable::insert_new(&mut m, k, k).stored());
        }
        let r = McTable::insert(&mut m, 7, 70);
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(McTable::lookup(&m, &7), Some(70));
        assert_eq!(McTable::remove(&mut m, &7), Some(70));
        let s = McTable::stats(&m);
        assert_eq!(s.ops.inserts, 200);
        assert_eq!(s.ops.updates, 1);
        assert_eq!(s.ops.removes, 1);
        assert!(s.kick_hist.count >= 200);
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut m: McMap<u64, u64> = McMap::with_capacity(1000);
        for k in 0..800u64 {
            m.insert(k, k);
        }
        let mut got: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        assert_eq!(got, (0u64..800).collect::<Vec<_>>());
    }
}
