//! [`McMap`] — a `HashMap`-shaped convenience wrapper with automatic
//! growth.
//!
//! The raw [`McCuckoo`] table is fixed-capacity by design (the paper's
//! setting: a hardware table sized at deployment, overflowing into a
//! stash). Software adopters usually want a map that *just grows*. This
//! wrapper provides that: inserts that stash, or a stash exceeding a
//! small fraction of capacity, trigger a doubling rehash — the
//! classical remedy, applied rarely enough to amortise.

use hash_kit::KeyHash;
use mem_model::InsertOutcome;

use crate::config::{DeletionMode, McConfig};
use crate::single::McCuckoo;

/// Stash occupancy (relative to capacity) that triggers a growth rehash.
const GROW_AT_STASH_FRACTION: f64 = 0.002;

/// An auto-growing map backed by a multi-copy cuckoo table.
///
/// ```
/// use mccuckoo_core::McMap;
///
/// let mut m: McMap<&str, u32> = McMap::new();
/// assert!(m.insert("a", 1));      // new key
/// assert!(!m.insert("a", 2));     // update
/// assert_eq!(m.get(&"a"), Some(&2));
/// assert_eq!(m.remove(&"a"), Some(2));
/// assert!(m.is_empty());
/// ```
#[derive(Debug)]
pub struct McMap<K, V> {
    table: McCuckoo<K, V>,
    grow_seed: u64,
}

impl<K: KeyHash + Eq + Clone, V: Clone> Default for McMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> McMap<K, V> {
    /// An empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// A map that can hold at least `items` before its first growth
    /// (sized to ~85% load).
    pub fn with_capacity(items: usize) -> Self {
        let per_table = (items as f64 / 3.0 / 0.85).ceil() as usize;
        let config = McConfig::paper(per_table.max(8), 0x4CAF_F1E1_D5EA_7B3D)
            .with_deletion(DeletionMode::Reset);
        Self {
            table: McCuckoo::new(config),
            grow_seed: 1,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Insert or update; returns the previous presence (like
    /// `HashMap::insert` returning whether the key was new).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let report = match self.table.insert(key, value) {
            Ok(r) => r,
            Err(_full) => unreachable!("stash-backed insert cannot hard-fail"),
        };
        let updated = report.outcome == InsertOutcome::Updated;
        if report.outcome == InsertOutcome::Stashed || self.stash_pressure() {
            self.grow();
        }
        !updated
    }

    fn stash_pressure(&self) -> bool {
        self.table.stash_len() as f64
            > (self.table.capacity() as f64 * GROW_AT_STASH_FRACTION).max(4.0)
    }

    fn grow(&mut self) {
        self.grow_seed = self
            .grow_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        // Growth with a stash-backed table cannot overflow.
        let Ok(_) = self.table.grow(self.grow_seed) else {
            unreachable!("stash-backed rehash cannot overflow")
        };
    }

    /// Get a reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.table.get(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.table.contains(key)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.table.remove(key)
    }

    /// Iterate `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.table.iter()
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Access the underlying table (metering, diagnostics).
    pub fn table(&self) -> &McCuckoo<K, V> {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    // Scaled down under `paranoid`: every insert validates the whole
    // table, so the volume tests would go quadratic.
    #[cfg(feature = "paranoid")]
    const SCALE: usize = 20;
    #[cfg(not(feature = "paranoid"))]
    const SCALE: usize = 1;

    #[test]
    fn grows_far_beyond_initial_capacity() {
        let mut m: McMap<u64, u64> = McMap::with_capacity(100);
        let initial_cap = m.capacity();
        let mut keys = UniqueKeys::new(1);
        let ks = keys.take_vec(50_000 / SCALE);
        for &k in &ks {
            assert!(m.insert(k, k));
        }
        assert!(m.capacity() > initial_cap, "map must have grown");
        assert_eq!(m.len(), ks.len());
        for &k in &ks {
            assert_eq!(m.get(&k), Some(&k));
        }
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn insert_reports_newness() {
        let mut m: McMap<u64, &str> = McMap::new();
        assert!(m.insert(1, "a"));
        assert!(!m.insert(1, "b"));
        assert_eq!(m.get(&1), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn differential_against_hashmap() {
        let mut m: McMap<u64, u64> = McMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = hash_kit::SplitMix64::new(3);
        for step in 0..60_000u64 / SCALE as u64 {
            let k = rng.next_below(20_000 / SCALE as u64);
            match rng.next_below(4) {
                0 | 1 => {
                    assert_eq!(m.insert(k, step), model.insert(k, step).is_none());
                }
                2 => assert_eq!(m.get(&k), model.get(&k)),
                _ => assert_eq!(m.remove(&k), model.remove(&k)),
            }
        }
        assert_eq!(m.len(), model.len());
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v));
        }
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn clear_empties_and_map_remains_usable() {
        let mut m: McMap<u64, u64> = McMap::new();
        for k in 0..1000u64 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&5), None);
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.get(&5), Some(&10));
        m.table().check_invariants().unwrap();
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut m: McMap<u64, u64> = McMap::with_capacity(1000);
        for k in 0..800u64 {
            m.insert(k, k);
        }
        let mut got: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        assert_eq!(got, (0u64..800).collect::<Vec<_>>());
    }
}
