//! Sharded multi-writer serving layer over [`ConcurrentMcCuckoo`].
//!
//! [`ConcurrentMcCuckoo`] (§III.H) already runs multiple writers via
//! striped bucket locks, but writers within one table still contend on
//! overlapping stripes (and batched ops take the full stripe sweep).
//! [`ShardedMcCuckoo`] partitions the key space across `S`
//! **independent** concurrent tables (shards), so writers on different
//! shards share *nothing* — not even a lock stripe or a stats cacheline
//! (each shard is padded to its own cacheline pair) — while reads stay
//! lock-free everywhere.
//!
//! **Shard selection.** A key's shard is the top `log2(S)` bits of a
//! seeded 64-bit digest ([`hash_kit::KeyHash::hash_seeded`]) computed
//! with a dedicated selector salt. Two properties matter:
//!
//! * the selector digest is *independent* of the in-shard bucket hashes
//!   (different seed stream), so conditioning on "key landed in shard s"
//!   does not bias its candidate buckets — each shard behaves exactly
//!   like a stand-alone McCuckoo table at `1/S` of the key volume, and
//!   the load guarantees of choice hashing survive partitioning (cf.
//!   Dietzfelbinger–Mitzenmacher–Rink, *Cuckoo Hashing with Pages*);
//! * taking the **top** bits leaves the low bits untouched for
//!   power-of-two reductions downstream, avoiding bit reuse between the
//!   selector and any hash that folds by `& (n - 1)`.
//!
//! **Per-shard state.** Each shard owns its complete McCuckoo state:
//! cells, the on-chip copy-counter array, seqlock versions and its own
//! writer lock stripes, built from a per-shard seed derived from the master
//! seed by a [`SplitMix64`] stream. Counters never refer across shards —
//! a copy count is a property of one key within one shard's candidate
//! buckets — so **no operation ever needs cross-shard coordination**:
//! an insert's kick walk, a deletion's counter reset and a lookup's
//! candidate probe all touch exactly one shard. The only global value is
//! `len()`, a sum of per-shard atomic counts (racy reads of it are as
//! linearizable as any size estimate under concurrent writers).
//!
//! **Batching.** The batched entry points ([`ShardedMcCuckoo::insert_batch`],
//! [`ShardedMcCuckoo::remove_batch`], [`ShardedMcCuckoo::lookup_batch`])
//! group a caller's operations by destination shard and dispatch one
//! per-shard batch each, so a shard's stripe sweep is taken **once per
//! batch** instead of once per op. The grouping is a counting sort into
//! one reused scratch buffer — no per-shard `Vec` churn on the hot
//! batched path. Results are returned in the caller's original order.
//! Lookups take no lock at all; their grouping exists to keep
//! consecutive probes within one shard's working set.

use hash_kit::{KeyHash, SplitMix64};
use jsonlite::{FromJson, Json, JsonError, ToJson};

use crate::concurrent::ConcurrentMcCuckoo;
use crate::config::McConfig;
use crate::obs::{Obs, ShardStats, TableStats};
use crate::pad::CachePadded;
use crate::persist::SnapshotOverflow;

/// Decorrelates the shard selector from every table-level hash seed.
const SELECTOR_SALT: u64 = 0x5AA2_D1CE_C7ED_BA5E;

/// Derives per-shard master seeds from the configured seed.
const SHARD_SEED_SALT: u64 = 0x51A8_DED5_EED5_7A2B;

/// N-way sharded, multi-writer multi-copy cuckoo table.
///
/// ```
/// use mccuckoo_core::{McConfig, ShardedMcCuckoo};
/// use std::sync::Arc;
///
/// // 4 shards × (3 × 256) buckets; writers on different shards run in
/// // parallel, readers are lock-free everywhere.
/// let t = Arc::new(ShardedMcCuckoo::<u64, u64>::new(4, McConfig::paper(256, 7)));
/// let results = t.insert_batch(&[(1, 10), (2, 20), (3, 30)]);
/// assert!(results.iter().all(|r| r.is_ok()));
/// assert_eq!(t.lookup_batch(&[2, 99]), vec![Some(20), None]);
/// assert_eq!(t.remove(&1), Some(10));
/// ```
pub struct ShardedMcCuckoo<K, V> {
    /// Each shard padded to its own cacheline pair, so neighbouring
    /// shards' hot atomics (distinct counts, stats, stripe locks) never
    /// false-share under multi-writer load.
    shards: Box<[CachePadded<ConcurrentMcCuckoo<K, V>>]>,
    /// `log2(shard count)`; 0 means a single shard.
    shard_bits: u32,
    select_seed: u64,
    /// The master configuration (pre-derivation seed), retained so
    /// snapshots can rebuild an identically-routed table.
    config: McConfig,
    /// Sharded-level observability: records caller-level batch sizes;
    /// op counters live in the shards and are merged by [`Self::stats`].
    obs: Obs,
}

impl<K, V> ShardedMcCuckoo<K, V>
where
    K: KeyHash + Eq + Copy,
    V: Copy,
{
    /// Build `shards` independent [`ConcurrentMcCuckoo`] shards, each
    /// sized by `config` (total capacity is `shards × d ×
    /// buckets_per_table`). Shard hash seeds are derived from
    /// `config.seed`, so equal configurations build identical tables.
    ///
    /// # Panics
    /// Panics if `shards` is zero or not a power of two (the selector is
    /// a bit slice).
    pub fn new(shards: usize, config: McConfig) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count must be a non-zero power of two, got {shards}"
        );
        let mut seeds = SplitMix64::new(config.seed ^ SHARD_SEED_SALT);
        let built: Box<[CachePadded<ConcurrentMcCuckoo<K, V>>]> = (0..shards)
            .map(|_| {
                let mut shard_config = config.clone();
                shard_config.seed = seeds.next_u64();
                CachePadded::new(ConcurrentMcCuckoo::new(shard_config))
            })
            .collect();
        Self {
            shards: built,
            shard_bits: shards.trailing_zeros(),
            select_seed: config.seed ^ SELECTOR_SALT,
            config,
            obs: Obs::default(),
        }
    }

    /// The master configuration this table was built from.
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves, for per-shard inspection (occupancy skew,
    /// direct shard handles for dedicated writer threads). The cacheline
    /// padding derefs transparently to each [`ConcurrentMcCuckoo`].
    pub fn shards(&self) -> &[CachePadded<ConcurrentMcCuckoo<K, V>>] {
        &self.shards
    }

    /// Which shard `key` routes to: the top `log2(S)` bits of the
    /// seeded selector digest.
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        (key.hash_seeded(self.select_seed) >> (64 - self.shard_bits)) as usize
    }

    /// Distinct keys stored across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Total bucket count across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity()).sum()
    }

    /// Observability snapshot: aggregate op counters and histograms
    /// merged across every shard (plus the caller-level batch sizes
    /// recorded at this layer), with a per-shard breakdown in
    /// [`TableStats::shards`] for occupancy-skew and hot-shard
    /// detection. Counters are monotonic; [`Self::clear`] does not
    /// reset them.
    pub fn stats(&self) -> TableStats {
        let mut agg = self.obs.snapshot();
        // Every shard is built from the same master config, so the
        // policy label is uniform across the breakdown.
        agg.kick_policy = self.config.kick.label().to_string();
        for (i, shard) in self.shards.iter().enumerate() {
            let s = shard.stats();
            agg.ops.merge(&s.ops);
            agg.probe_hist.merge(&s.probe_hist);
            agg.kick_hist.merge(&s.kick_hist);
            agg.batch_hist.merge(&s.batch_hist);
            agg.shards.push(ShardStats {
                shard: i,
                len: shard.len(),
                capacity: shard.capacity(),
                ops: s.ops,
            });
        }
        agg
    }

    /// Aggregate memory-access tallies: the sum of every shard's
    /// [`ConcurrentMcCuckoo::mem_stats`] snapshot. Safe under concurrent
    /// readers and writers (each shard's counters are relaxed atomics);
    /// the sum is as linearizable as any live multi-writer statistic.
    pub fn mem_stats(&self) -> mem_model::MemStats {
        let mut agg = mem_model::MemStats::default();
        for shard in self.shards.iter() {
            let s = shard.mem_stats();
            agg.offchip_reads += s.offchip_reads;
            agg.offchip_writes += s.offchip_writes;
            agg.onchip_reads += s.onchip_reads;
            agg.onchip_writes += s.onchip_writes;
        }
        agg
    }

    // ------------------------------------------------------------------
    // Single-op API (mirrors `ConcurrentMcCuckoo`)
    // ------------------------------------------------------------------

    /// Lock-free lookup in the key's shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert or update in the key's shard. Same contract as
    /// [`ConcurrentMcCuckoo::insert`]: `Ok(true)` = updated in place,
    /// `Ok(false)` = freshly placed, `Err` = rejected with nothing
    /// mutated.
    pub fn insert(&self, key: K, value: V) -> Result<bool, (K, V)> {
        self.shards[self.shard_of(&key)].insert(key, value)
    }

    /// Insert a key known to be absent. Same contract as
    /// [`ConcurrentMcCuckoo::insert_new`].
    pub fn insert_new(&self, key: K, value: V) -> Result<(), (K, V)> {
        self.shards[self.shard_of(&key)].insert_new(key, value)
    }

    /// Remove `key` from its shard, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].remove(key)
    }

    /// Clear every shard. Each shard clears under its own writer lock;
    /// there is no cross-shard atomicity (a concurrent reader may see
    /// shard 0 empty while shard 1 still serves).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.clear();
        }
    }

    /// Exhaustive structural validation of every shard, plus the routing
    /// invariant (each shard only holds keys that route to it — checked
    /// structurally: a foreign key would fail its shard's own candidate
    /// validation only probabilistically, so routing is asserted at the
    /// API boundary instead and revalidated here per shard).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Batched API
    // ------------------------------------------------------------------

    /// Counting-sort `items`' positions by destination shard. Returns
    /// `(order, offsets)`: `order[offsets[s]..offsets[s + 1]]` holds the
    /// caller positions routed to shard `s`, and `order` as a whole is a
    /// permutation of `0..items.len()`. Two flat allocations, no
    /// per-shard `Vec` growth.
    fn group_by_shard<T>(
        &self,
        items: &[T],
        shard_of: impl Fn(&T) -> usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let nshards = self.shards.len();
        // Route each item once — the selector digest is a full seeded
        // hash, so re-deriving it in the placement pass would double the
        // batch's hashing bill.
        let ids: Vec<u32> = items.iter().map(|item| shard_of(item) as u32).collect();
        let mut offsets: Vec<u32> = vec![0; nshards + 1];
        let mut order: Vec<u32> = vec![0; items.len()];
        for &s in &ids {
            offsets[s as usize + 1] += 1;
        }
        for s in 0..nshards {
            offsets[s + 1] += offsets[s];
        }
        let mut cursor = offsets.clone();
        for (i, &s) in ids.iter().enumerate() {
            order[cursor[s as usize] as usize] = i as u32;
            cursor[s as usize] += 1;
        }
        (order, offsets)
    }

    /// Upsert a batch, taking each involved shard's stripe sweep **once**.
    ///
    /// Results are positional: `out[i]` corresponds to `items[i]`
    /// regardless of how the batch was regrouped internally. Failed items
    /// leave their shard untouched, exactly like single-op inserts.
    pub fn insert_batch(&self, items: &[(K, V)]) -> Vec<Result<bool, (K, V)>> {
        self.obs.record_batch(items.len());
        if self.shards.len() == 1 {
            return self.shards[0].insert_batch(items);
        }
        let (order, offsets) = self.group_by_shard(items, |(k, _)| self.shard_of(k));
        let scratch: Vec<(K, V)> = order.iter().map(|&i| items[i as usize]).collect();
        // Every slot is overwritten: `order` is a permutation.
        let mut out: Vec<Result<bool, (K, V)>> = vec![Ok(false); items.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
            if lo == hi {
                continue;
            }
            for (&i, result) in order[lo..hi]
                .iter()
                .zip(shard.insert_batch(&scratch[lo..hi]))
            {
                out[i as usize] = result;
            }
        }
        out
    }

    /// Look up a batch. Lock-free; grouped by shard so consecutive
    /// probes stay within one shard's working set. Results are
    /// positional.
    pub fn lookup_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.obs.record_batch(keys.len());
        if self.shards.len() == 1 {
            return self.shards[0].get_batch(keys);
        }
        let (order, offsets) = self.group_by_shard(keys, |k| self.shard_of(k));
        let scratch: Vec<K> = order.iter().map(|&i| keys[i as usize]).collect();
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
            if lo == hi {
                continue;
            }
            for (&i, result) in order[lo..hi].iter().zip(shard.get_batch(&scratch[lo..hi])) {
                out[i as usize] = result;
            }
        }
        out
    }

    /// Remove a batch, taking each involved shard's stripe sweep **once**.
    /// Results are positional; a key duplicated within the batch is
    /// removed by its first occurrence only.
    pub fn remove_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.obs.record_batch(keys.len());
        if self.shards.len() == 1 {
            return self.shards[0].remove_batch(keys);
        }
        let (order, offsets) = self.group_by_shard(keys, |k| self.shard_of(k));
        let scratch: Vec<K> = order.iter().map(|&i| keys[i as usize]).collect();
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
            if lo == hi {
                continue;
            }
            for (&i, result) in order[lo..hi]
                .iter()
                .zip(shard.remove_batch(&scratch[lo..hi]))
            {
                out[i as usize] = result;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Capture a serialisable snapshot: the master configuration, the
    /// shard count and every stored pair. Per-shard seeds are *not*
    /// stored — they re-derive deterministically from the master seed,
    /// so a restore routes every key to its original shard. The caller
    /// must ensure no writers are active while the capture runs (each
    /// shard is read under its own writer lock, but there is no
    /// cross-shard atomicity).
    pub fn to_snapshot(&self) -> ShardedSnapshot<K, V> {
        ShardedSnapshot {
            config: self.config.clone(),
            shards: self.shards.len(),
            items: self.shards.iter().flat_map(|s| s.items()).collect(),
        }
    }

    /// Rebuild a table from a snapshot, reporting any items that no
    /// longer fit instead of dropping them. With an unchanged
    /// configuration every item re-places (the restored table is a
    /// fresh, conflict-free build), so overflow only arises when the
    /// snapshot is edited toward a smaller geometry.
    pub fn try_from_snapshot(
        snapshot: ShardedSnapshot<K, V>,
    ) -> Result<Self, SnapshotOverflow<K, V>> {
        let t = Self::new(snapshot.shards, snapshot.config);
        let mut leftover = Vec::new();
        for (k, v) in snapshot.items {
            // Unrecorded: restoring persisted items must not count as
            // user inserts in the obs layer.
            let shard = &t.shards[t.shard_of(&k)];
            if let Err(pair) = shard.insert_new_unrecorded(k, v) {
                leftover.push(pair);
            }
        }
        if leftover.is_empty() {
            Ok(t)
        } else {
            Err(SnapshotOverflow {
                placed: t.shards.iter().flat_map(|s| s.items()).collect(),
                leftover,
            })
        }
    }

    /// [`Self::try_from_snapshot`], panicking on overflow. Restores that
    /// may target a smaller geometry should call the fallible variant.
    ///
    /// # Panics
    /// Panics if any snapshot item cannot be re-placed.
    pub fn from_snapshot(snapshot: ShardedSnapshot<K, V>) -> Self {
        Self::try_from_snapshot(snapshot).unwrap_or_else(|overflow| {
            panic!(
                "snapshot restore overflowed: {} item(s) unplaceable",
                overflow.leftover.len()
            )
        })
    }
}

/// A serialisable snapshot of a sharded table. Per-shard hash seeds are
/// derived (not stored): rebuilding with the same master `config` and
/// `shards` count reproduces both the shard selector and every shard's
/// hash functions, so restored keys route identically.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot<K, V> {
    /// Master configuration (pre-derivation seed).
    pub config: McConfig,
    /// Shard count (a non-zero power of two).
    pub shards: usize,
    /// Every stored pair, unordered.
    pub items: Vec<(K, V)>,
}

impl<K: ToJson, V: ToJson> ToJson for ShardedSnapshot<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".to_owned(), self.config.to_json()),
            ("shards".to_owned(), self.shards.to_json()),
            ("items".to_owned(), self.items.to_json()),
        ])
    }
}

impl<K: FromJson, V: FromJson> FromJson for ShardedSnapshot<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            j.get(name)
                .ok_or_else(|| JsonError(format!("missing field '{name}'")))
        };
        Ok(Self {
            config: FromJson::from_json(field("config")?)?,
            shards: FromJson::from_json(field("shards")?)?,
            items: FromJson::from_json(field("items")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn table(shards: usize, buckets: usize, seed: u64) -> ShardedMcCuckoo<u64, u64> {
        ShardedMcCuckoo::new(shards, McConfig::paper(buckets, seed))
    }

    #[test]
    fn routing_is_total_deterministic_and_spread() {
        let t = table(8, 64, 1);
        let mut per_shard = [0usize; 8];
        for k in 0u64..4_000 {
            let s = t.shard_of(&k);
            assert!(s < 8);
            assert_eq!(s, t.shard_of(&k), "routing must be deterministic");
            per_shard[s] += 1;
        }
        // 4000 keys over 8 shards: each shard sees a non-trivial share.
        for (s, &n) in per_shard.iter().enumerate() {
            assert!(n > 250, "shard {s} got only {n} of 4000 keys");
        }
    }

    #[test]
    fn single_shard_degenerates_cleanly() {
        let t = table(1, 128, 2);
        for k in 0u64..100 {
            assert_eq!(t.insert(k, k * 2), Ok(false));
        }
        assert_eq!(t.shard_of(&17), 0);
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(&17), Some(34));
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panics() {
        let _ = table(3, 16, 0);
    }

    #[test]
    fn ops_route_to_the_selected_shard_only() {
        let t = table(4, 64, 3);
        for k in 0u64..200 {
            t.insert(k, k).unwrap();
        }
        for k in 0u64..200 {
            let home = t.shard_of(&k);
            for (s, shard) in t.shards().iter().enumerate() {
                assert_eq!(
                    shard.get(&k).is_some(),
                    s == home,
                    "key {k} visible in shard {s}, home {home}"
                );
            }
        }
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn batched_ops_match_singles_and_preserve_order() {
        let singles = table(4, 128, 4);
        let batched = table(4, 128, 4);
        let mut keys = UniqueKeys::new(5);
        let items: Vec<(u64, u64)> = keys
            .take_vec(600)
            .into_iter()
            .map(|k| (k, k ^ 42))
            .collect();
        let mut expect = Vec::new();
        for &(k, v) in &items {
            expect.push(singles.insert(k, v));
        }
        assert_eq!(batched.insert_batch(&items), expect, "positional results");
        assert_eq!(batched.len(), singles.len());
        let ks: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        assert_eq!(batched.lookup_batch(&ks), singles.lookup_batch(&ks));
        // Upsert the same batch: every result must be `Ok(true)` in order.
        let bumped: Vec<(u64, u64)> = items.iter().map(|&(k, v)| (k, v + 1)).collect();
        assert!(batched.insert_batch(&bumped).iter().all(|r| *r == Ok(true)));
        assert_eq!(batched.lookup_batch(&ks[..5]).len(), 5);
        assert_eq!(
            batched.remove_batch(&ks),
            singles
                .lookup_batch(&ks)
                .iter()
                .map(|v| v.map(|x| x + 1))
                .collect::<Vec<_>>()
        );
        assert!(batched.is_empty());
        batched.check_invariants().unwrap();
    }

    #[test]
    fn differential_against_hashmap_through_batches() {
        let t = table(4, 64, 6);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(7);
        for round in 0..60u64 {
            let mut batch = Vec::new();
            for j in 0..32 {
                batch.push((rng.next_below(500), round * 100 + j));
            }
            // The model applies the batch in order, skipping rejects —
            // the same semantics insert_batch promises.
            let results = t.insert_batch(&batch);
            for (&(k, v), r) in batch.iter().zip(&results) {
                if r.is_ok() {
                    model.insert(k, v);
                }
            }
            let probe: Vec<u64> = (0..16).map(|_| rng.next_below(500)).collect();
            assert_eq!(
                t.lookup_batch(&probe),
                probe
                    .iter()
                    .map(|k| model.get(k).copied())
                    .collect::<Vec<_>>()
            );
            let victims: Vec<u64> = (0..8).map(|_| rng.next_below(500)).collect();
            let removed = t.remove_batch(&victims);
            for (k, r) in victims.iter().zip(removed) {
                assert_eq!(r, model.remove(k), "remove {k} in round {round}");
            }
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn writers_on_distinct_shards_run_concurrently() {
        // Four threads insert disjoint batches concurrently; nothing is
        // lost and every shard stays structurally valid. On a multicore
        // host the threads genuinely overlap; the correctness claim holds
        // for every interleaving either way.
        let t = std::sync::Arc::new(table(4, 1_024, 8));
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let t = t.clone();
                scope.spawn(move || {
                    let base = 1 + w * per_thread;
                    let items: Vec<(u64, u64)> =
                        (base..base + per_thread).map(|k| (k, k * 3)).collect();
                    for chunk in items.chunks(64) {
                        for r in t.insert_batch(chunk) {
                            r.expect("4k keys in 12k buckets must fit");
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * per_thread as usize);
        for k in 1..=4 * per_thread {
            assert_eq!(t.get(&k), Some(k * 3), "key {k} lost");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_round_trip_preserves_items_and_routing() {
        let t = table(4, 128, 11);
        let mut keys = UniqueKeys::new(12);
        let ks = keys.take_vec(800);
        for &k in &ks {
            t.insert_new(k, k ^ 0xBEEF).unwrap();
        }
        let snap = t.to_snapshot();
        assert_eq!(snap.shards, 4);
        assert_eq!(snap.items.len(), 800);
        // Serialise through jsonlite and back.
        let snap: ShardedSnapshot<u64, u64> =
            FromJson::from_json(&jsonlite::parse(&jsonlite::to_string(&snap)).unwrap()).unwrap();
        let r = ShardedMcCuckoo::from_snapshot(snap);
        assert_eq!(r.len(), 800);
        for &k in &ks {
            // Same value, and — because per-shard seeds re-derive from
            // the master seed — the same home shard as before.
            assert_eq!(r.get(&k), Some(k ^ 0xBEEF));
            assert_eq!(r.shard_of(&k), t.shard_of(&k));
            assert!(r.shards()[r.shard_of(&k)].contains(&k));
        }
        r.check_invariants().unwrap();
        // Restores are unrecorded: no inserts appear in the obs layer.
        assert_eq!(r.stats().ops.inserts, 0);
    }

    #[test]
    fn stats_aggregate_and_per_shard_breakdown() {
        let t = table(4, 128, 13);
        let mut keys = UniqueKeys::new(14);
        let items: Vec<(u64, u64)> = keys.take_vec(300).into_iter().map(|k| (k, k)).collect();
        for r in t.insert_batch(&items) {
            r.unwrap();
        }
        let hits = t.lookup_batch(&items.iter().map(|&(k, _)| k).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.is_some()));
        assert_eq!(t.get(&u64::MAX), None);
        let s = t.stats();
        assert_eq!(s.ops.inserts, 300);
        assert_eq!(s.ops.lookup_hits, 300);
        assert_eq!(s.ops.lookup_misses, 1);
        assert_eq!(s.shards.len(), 4);
        assert_eq!(s.shards.iter().map(|sh| sh.ops.inserts).sum::<u64>(), 300);
        assert_eq!(s.shards.iter().map(|sh| sh.len).sum::<usize>(), t.len());
        // Caller-level batches (2) plus the per-shard sub-batches.
        assert!(s.batch_hist.count >= 2);
        assert!(s.occupancy_skew() >= 1.0);
        assert!(s.hottest_shard().is_some());
    }

    #[test]
    fn clear_empties_every_shard() {
        let t = table(2, 64, 9);
        for k in 0u64..100 {
            t.insert(k, k).unwrap();
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        for k in 0u64..100 {
            assert_eq!(t.get(&k), None);
        }
        // Reusable after clear.
        t.insert(5, 55).unwrap();
        assert_eq!(t.get(&5), Some(55));
        t.check_invariants().unwrap();
    }
}
