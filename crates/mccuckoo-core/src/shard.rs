//! Sharded multi-writer serving layer over [`ConcurrentMcCuckoo`], with
//! incremental, reader-live growth.
//!
//! [`ConcurrentMcCuckoo`] (§III.H) already runs multiple writers via
//! striped bucket locks, but writers within one table still contend on
//! overlapping stripes (and batched ops take the full stripe sweep).
//! [`ShardedMcCuckoo`] partitions the key space across `S`
//! **independent** concurrent tables (shards), so writers on different
//! shards share *nothing* — not even a lock stripe or a stats cacheline
//! (each shard is padded to its own cacheline pair) — while reads stay
//! lock-free everywhere.
//!
//! **Shard selection.** A key's *route* is the top `DIR_BITS` bits of
//! a seeded 64-bit digest ([`hash_kit::KeyHash::hash_seeded`]) computed
//! with a dedicated selector salt; a fixed 256-entry **route directory**
//! maps the route to its serving table. Two properties matter:
//!
//! * the selector digest is *independent* of the in-shard bucket hashes
//!   (different seed stream), so conditioning on "key landed in shard s"
//!   does not bias its candidate buckets — each shard behaves exactly
//!   like a stand-alone McCuckoo table at `1/S` of the key volume, and
//!   the load guarantees of choice hashing survive partitioning (cf.
//!   Dietzfelbinger–Mitzenmacher–Rink, *Cuckoo Hashing with Pages*);
//! * taking the **top** bits leaves the low bits untouched for
//!   power-of-two reductions downstream, avoiding bit reuse between the
//!   selector and any hash that folds by `& (n - 1)`.
//!
//! **Incremental growth** (the paper's "costly remedy", §I/§II.B, made a
//! non-event). [`ShardedMcCuckoo::begin_split`] doubles one shard
//! logically: because routing is a prefix of the selector digest, the
//! split target is deterministic — keys whose next selector bit is 1
//! move to a freshly allocated sibling table. The split
//!
//! 1. publishes the child table and flips the child's slice of the route
//!    directory to `(child, forward → parent)` — from this instant every
//!    *new* write for that slice lands in the child;
//! 2. drains the parent stripe-by-stripe through the existing
//!    plan→lock→re-validate machinery ([`ConcurrentMcCuckoo`]'s
//!    `migrate_out`): each key is re-read under its parent stripes,
//!    copied into the child, and only then removed, so **readers never
//!    block and never miss** — a key is always findable on at least one
//!    side, and the forwarding entry tells lookups to probe the parent
//!    as fallback;
//! 3. clears the forwarding bits once a full drain pass moves nothing,
//!    completing the split. A migrator that dies mid-drain leaves the
//!    forwarding map up — the table stays fully consistent (just with
//!    two-sided lookups for that slice) and a later `begin_split` of the
//!    same shard *resumes* the drain.
//!
//! Writers that race a route flip re-validate the directory entry after
//! every successful placement and redo the op on the new serving table
//! (removing the stale copy), so the linearizable contract of the
//! single-table API survives migration.
//!
//! **Per-shard state.** Each shard owns its complete McCuckoo state:
//! cells, the on-chip copy-counter array, seqlock versions and its own
//! writer lock stripes, built from a per-shard seed derived from the
//! master seed by a [`SplitMix64`] stream (split children derive theirs
//! from their route prefix, so recovery replays reproduce them).
//! Counters never refer across shards, so ordinary operations touch
//! exactly one shard; only the migration cursor ever holds locks in two
//! tables at once (always source→destination, so no cycle can form).
//! The only global value is `len()`, a sum of per-shard atomic counts
//! (racy reads of it are as linearizable as any size estimate under
//! concurrent writers; mid-drain it may transiently double-count the
//! one in-flight key).
//!
//! **Batching.** The batched entry points group a caller's operations by
//! serving table and dispatch one per-shard batch each, so a shard's
//! stripe sweep is taken **once per batch** instead of once per op. Keys
//! routed through an active forwarding entry take the per-key path, and
//! every batched result is re-validated against the directory afterwards
//! (a racing route flip redoes just the affected keys). Results are
//! returned in the caller's original order.

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use hash_kit::{KeyHash, SplitMix64};
use jsonlite::{FromJson, Json, JsonError, ToJson};
use mem_model::{InsertOutcome, InsertReport};
use parking_lot::Mutex;

use crate::concurrent::{ConcurrentMcCuckoo, MigrateOutcome};
use crate::config::McConfig;
use crate::obs::{InsertTally, LookupTally, MaintObs, MigrationObs, Obs, ShardStats, TableStats};
use crate::pad::CachePadded;
use crate::persist::SnapshotOverflow;

/// Decorrelates the shard selector from every table-level hash seed.
const SELECTOR_SALT: u64 = 0x5AA2_D1CE_C7ED_BA5E;

/// Derives per-shard master seeds from the configured seed.
const SHARD_SEED_SALT: u64 = 0x51A8_DED5_EED5_7A2B;

/// Derives split-child seeds from the configured seed and the child's
/// route prefix, so an op-log replay rebuilds identical children.
const SPLIT_SEED_SALT: u64 = 0x5F17_C81D_5EED_F00D;

/// Width of the route directory index (top bits of the selector digest).
const DIR_BITS: u32 = 8;

/// Entries in the route directory — also the hard ceiling on the total
/// number of tables a sharded map can grow to.
const DIR_SIZE: usize = 1 << DIR_BITS;

/// Pack a directory entry: low 16 bits the serving table id, bits 16..32
/// the forwarding parent id plus one (0 = no forwarding).
#[inline]
fn encode_entry(tid: usize, fwd: Option<usize>) -> u64 {
    debug_assert!(tid < DIR_SIZE);
    tid as u64 | ((fwd.map_or(0, |f| f as u64 + 1)) << 16)
}

/// Unpack a directory entry into `(serving table, forwarding parent)`.
#[inline]
fn decode_entry(e: u64) -> (usize, Option<usize>) {
    let tid = (e & 0xFFFF) as usize;
    let f = ((e >> 16) & 0xFFFF) as usize;
    (tid, if f == 0 { None } else { Some(f - 1) })
}

/// One slot of the grow-only table arena. The pointer is published with
/// a release store before any directory entry (or the table count)
/// names the slot, so an acquire load through either is always safe to
/// dereference.
struct ShardSlot<K, V> {
    table: AtomicPtr<CachePadded<ConcurrentMcCuckoo<K, V>>>,
    /// The selector-prefix this table owns (`depth` bits wide).
    prefix: AtomicU32,
    /// How many selector bits the prefix spans.
    depth: AtomicU32,
}

impl<K, V> ShardSlot<K, V> {
    fn empty() -> Self {
        Self {
            table: AtomicPtr::new(std::ptr::null_mut()),
            prefix: AtomicU32::new(0),
            depth: AtomicU32::new(0),
        }
    }
}

/// Why [`ShardedMcCuckoo::begin_split`] refused to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitError {
    /// The shard id is not a live table.
    UnknownShard {
        /// The requested shard id.
        shard: usize,
        /// How many tables are live.
        tables: usize,
    },
    /// The shard's route prefix is down to a single directory entry, so
    /// the directory cannot tell its children apart any more.
    DepthExhausted {
        /// The shard whose prefix cannot narrow further.
        shard: usize,
    },
    /// Every one of the directory's 256 table slots is live, so no shard
    /// can allocate a split child any more. The table keeps serving —
    /// growth has simply reached the directory's hard ceiling.
    DirectoryFull {
        /// The shard that asked to split.
        shard: usize,
    },
    /// The shard is itself the still-filling child of an unfinished
    /// split; resume by splitting its parent again.
    PendingInbound {
        /// The requested shard id.
        shard: usize,
        /// The parent whose drain toward `shard` is unfinished.
        parent: usize,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::UnknownShard { shard, tables } => {
                write!(f, "shard {shard} does not exist ({tables} live tables)")
            }
            SplitError::DepthExhausted { shard } => write!(
                f,
                "shard {shard} owns a single route entry and cannot split further"
            ),
            SplitError::DirectoryFull { shard } => write!(
                f,
                "shard {shard} cannot split: all {DIR_SIZE} directory table slots are live"
            ),
            SplitError::PendingInbound { shard, parent } => write!(
                f,
                "shard {shard} is still being filled by an unfinished split; \
                 resume via begin_split({parent})"
            ),
        }
    }
}

impl std::error::Error for SplitError {}

/// What one [`ShardedMcCuckoo::begin_split`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitReport {
    /// The shard that was drained.
    pub parent: usize,
    /// The sibling table that received the moved keys.
    pub child: usize,
    /// `true` when this call resumed a previously interrupted drain
    /// instead of allocating a fresh child.
    pub resumed: bool,
    /// Keys moved parent → child.
    pub moved: u64,
    /// Drain visits that found the key already gone (raced by a
    /// concurrent remove, a forwarded upsert's stale-copy eviction, or a
    /// previous interrupted drain).
    pub skipped: u64,
    /// Move attempts whose child placement overflowed (the key stays in
    /// the parent, served through the retained forwarding entry).
    pub failed: u64,
    /// `true` when the drain fully emptied the migrating slice and the
    /// forwarding entries were cleared (the split is complete).
    pub forwarding_cleared: bool,
}

/// What one [`ShardedMcCuckoo::retire_forwarding`] pass did: every live
/// `(child, parent)` forwarding pair was re-drained, and pairs whose
/// drain fully emptied had their forwarding entries cleared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetireReport {
    /// Distinct forwarding pairs the pass re-drained.
    pub attempted: usize,
    /// Pairs whose forwarding entries were cleared (drain emptied).
    pub retired: usize,
    /// Keys moved parent → child across all pairs.
    pub moved: u64,
    /// Drain visits that found the key already gone.
    pub skipped: u64,
    /// Move attempts whose child placement overflowed again (those
    /// pairs keep their forwarding entries for a later pass).
    pub failed: u64,
    /// Directory entries still carrying a forwarding tag after the pass
    /// (0 means every split is fully retired).
    pub forwarding_live: usize,
}

/// N-way sharded, multi-writer multi-copy cuckoo table with incremental
/// shard-split growth.
///
/// ```
/// use mccuckoo_core::{McConfig, ShardedMcCuckoo};
/// use std::sync::Arc;
///
/// // 4 shards × (3 × 256) buckets; writers on different shards run in
/// // parallel, readers are lock-free everywhere.
/// let t = Arc::new(ShardedMcCuckoo::<u64, u64>::new(4, McConfig::paper(256, 7)));
/// let results = t.insert_batch(&[(1, 10), (2, 20), (3, 30)]);
/// assert!(results.iter().all(|r| r.is_ok()));
/// assert_eq!(t.lookup_batch(&[2, 99]), vec![Some(20), None]);
/// assert_eq!(t.remove(&1), Some(10));
///
/// // Grow one shard without stopping the world: readers keep serving
/// // through the whole drain.
/// let report = t.begin_split(0).unwrap();
/// assert!(report.forwarding_cleared);
/// assert_eq!(t.shard_count(), 5);
/// assert_eq!(t.get(&2), Some(20));
/// ```
pub struct ShardedMcCuckoo<K, V> {
    /// Route directory: `dir[route]` packs the serving table id and the
    /// optional forwarding parent (see [`encode_entry`]).
    dir: Box<[AtomicU64]>,
    /// Grow-only arena of table slots; ids `0..ntables` are live. Each
    /// table is padded to its own cacheline pair, so neighbouring
    /// shards' hot atomics never false-share under multi-writer load.
    slots: Box<[ShardSlot<K, V>]>,
    /// How many arena slots are live (monotonic; grows on split).
    ntables: AtomicUsize,
    /// The shard count the table was built with (snapshot geometry).
    base_shards: usize,
    select_seed: u64,
    /// The master configuration (pre-derivation seed), retained so
    /// snapshots can rebuild an identically-routed table.
    config: McConfig,
    /// Sharded-level observability: records caller-level batch sizes;
    /// op counters live in the shards and are merged by [`Self::stats`].
    obs: Obs,
    /// Split-migration counters (keys moved, forwarding hits, split
    /// durations).
    migration: MigrationObs,
    /// Maintenance counters (retirements, compactions, snapshot age);
    /// the maintenance loop in [`crate::maint`] records into this so
    /// [`Self::stats`] exposes the whole loop.
    maint: MaintObs,
    /// Parent ids of every completed-or-started split, in allocation
    /// order (guarded by `split_lock`). Snapshots persist this history
    /// so a restore reproduces the grown layout even after the op log's
    /// `Split` records have been compacted away.
    splits: Mutex<Vec<usize>>,
    /// Serialises splits (and `clear`) — one drain at a time.
    split_lock: Mutex<()>,
}

// SAFETY: the raw table pointers are owned by the slots (freed only in
// `Drop`, which holds `&mut self`), published with release stores before
// the directory or table count names them, and only ever dereferenced
// shared. The pointed-to tables carry the actual concurrency story, so
// we forward exactly `ConcurrentMcCuckoo`'s bounds (`K: Send, V: Send`).
unsafe impl<K: Send, V: Send> Send for ShardedMcCuckoo<K, V> {}
unsafe impl<K: Send, V: Send> Sync for ShardedMcCuckoo<K, V> {}

impl<K, V> Drop for ShardedMcCuckoo<K, V> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.table.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: every published slot pointer came from
                // `Box::into_raw` and is dropped exactly once, here.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl<K, V> ShardedMcCuckoo<K, V>
where
    K: KeyHash + Eq + Copy,
    V: Copy,
{
    /// Build `shards` independent [`ConcurrentMcCuckoo`] shards, each
    /// sized by `config` (total capacity is `shards × d ×
    /// buckets_per_table`). Shard hash seeds are derived from
    /// `config.seed`, so equal configurations build identical tables.
    ///
    /// # Panics
    /// Panics if `shards` is zero, not a power of two (the selector is a
    /// bit slice), or larger than the route directory (256 entries).
    pub fn new(shards: usize, config: McConfig) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count must be a non-zero power of two, got {shards}"
        );
        assert!(
            shards <= DIR_SIZE,
            "shard count must be at most {DIR_SIZE}, got {shards}"
        );
        let base_bits = shards.trailing_zeros();
        let mut seeds = SplitMix64::new(config.seed ^ SHARD_SEED_SALT);
        let slots: Box<[ShardSlot<K, V>]> = (0..DIR_SIZE).map(|_| ShardSlot::empty()).collect();
        for (s, slot) in slots.iter().enumerate().take(shards) {
            let mut shard_config = config.clone();
            shard_config.seed = seeds.next_u64();
            let table = Box::new(CachePadded::new(ConcurrentMcCuckoo::new(shard_config)));
            slot.prefix.store(s as u32, Ordering::Relaxed);
            slot.depth.store(base_bits, Ordering::Relaxed);
            slot.table.store(Box::into_raw(table), Ordering::Release);
        }
        let dir: Box<[AtomicU64]> = (0..DIR_SIZE)
            .map(|r| AtomicU64::new(encode_entry(r >> (DIR_BITS - base_bits), None)))
            .collect();
        Self {
            dir,
            slots,
            ntables: AtomicUsize::new(shards),
            base_shards: shards,
            select_seed: config.seed ^ SELECTOR_SALT,
            config,
            obs: Obs::default(),
            migration: MigrationObs::default(),
            maint: MaintObs::default(),
            splits: Mutex::new(Vec::new()),
            split_lock: Mutex::new(()),
        }
    }

    /// The master configuration this table was built from.
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Number of live tables (grows by one per completed-or-started
    /// split; starts at the constructor's shard count).
    pub fn shard_count(&self) -> usize {
        self.ntables.load(Ordering::Acquire)
    }

    /// One shard by id, for per-shard inspection (occupancy skew, direct
    /// shard handles for dedicated writer threads).
    ///
    /// # Panics
    /// Panics if `id` is not a live table id.
    pub fn shard(&self, id: usize) -> &ConcurrentMcCuckoo<K, V> {
        let n = self.shard_count();
        assert!(id < n, "shard {id} out of range ({n} live tables)");
        self.table(id)
    }

    /// The directory index (top `DIR_BITS` selector bits) of `key`.
    #[inline]
    fn route_of(&self, key: &K) -> usize {
        (key.hash_seeded(self.select_seed) >> (64 - DIR_BITS)) as usize
    }

    /// Which shard currently serves `key`. Mid-split this is the child
    /// the key is migrating *to*; the in-flight copy may still be in the
    /// forwarding parent.
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        decode_entry(self.dir[self.route_of(key)].load(Ordering::Acquire)).0
    }

    /// The table behind arena slot `tid`.
    #[inline]
    fn table(&self, tid: usize) -> &CachePadded<ConcurrentMcCuckoo<K, V>> {
        let p = self.slots[tid].table.load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "table {tid} dereferenced before publish");
        // SAFETY: published pointers are valid until `Drop` (&mut).
        unsafe { &*p }
    }

    /// Decoded directory entry for `route`.
    #[inline]
    fn entry(&self, route: usize) -> (usize, Option<usize>) {
        decode_entry(self.dir[route].load(Ordering::Acquire))
    }

    /// Distinct keys stored across all shards.
    pub fn len(&self) -> usize {
        (0..self.shard_count()).map(|t| self.table(t).len()).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        (0..self.shard_count()).all(|t| self.table(t).is_empty())
    }

    /// Total bucket count across all shards.
    pub fn capacity(&self) -> usize {
        (0..self.shard_count())
            .map(|t| self.table(t).capacity())
            .sum()
    }

    /// Observability snapshot: aggregate op counters and histograms
    /// merged across every shard (plus the caller-level batch sizes and
    /// migration counters recorded at this layer), with a per-shard
    /// breakdown in [`TableStats::shards`] for occupancy-skew and
    /// hot-shard detection. Counters are monotonic; [`Self::clear`] does
    /// not reset them.
    pub fn stats(&self) -> TableStats {
        let mut agg = self.obs.snapshot();
        // Every shard is built from the same master config, so the
        // policy label is uniform across the breakdown.
        agg.kick_policy = self.config.kick.label().to_string();
        agg.migration = self.migration.snapshot();
        agg.maint = self.maint.snapshot();
        agg.maint.forwarding_live = self.forwarding_live() as u64;
        for t in 0..self.shard_count() {
            let table = self.table(t);
            let s = table.stats();
            agg.ops.merge(&s.ops);
            agg.probe_hist.merge(&s.probe_hist);
            agg.kick_hist.merge(&s.kick_hist);
            agg.batch_hist.merge(&s.batch_hist);
            agg.shards.push(ShardStats {
                shard: t,
                len: table.len(),
                capacity: table.capacity(),
                ops: s.ops,
            });
        }
        agg
    }

    /// Aggregate memory-access tallies: the sum of every shard's
    /// [`ConcurrentMcCuckoo::mem_stats`] snapshot. Safe under concurrent
    /// readers and writers (each shard's counters are relaxed atomics);
    /// the sum is as linearizable as any live multi-writer statistic.
    pub fn mem_stats(&self) -> mem_model::MemStats {
        let mut agg = mem_model::MemStats::default();
        for t in 0..self.shard_count() {
            let s = self.table(t).mem_stats();
            agg.offchip_reads += s.offchip_reads;
            agg.offchip_writes += s.offchip_writes;
            agg.onchip_reads += s.onchip_reads;
            agg.onchip_writes += s.onchip_writes;
        }
        agg
    }

    // ------------------------------------------------------------------
    // Routed op engines (shared by the single-op, batched, and recovery
    // paths; all unrecorded — the public wrappers record exactly once)
    // ------------------------------------------------------------------

    /// Lock-free routed lookup. Returns the value, the probe count, and
    /// the serving table at the linearization point (for recording).
    ///
    /// Finality: a **hit** is final (the value was live at some instant
    /// inside the call). A **miss** is final only if the directory entry
    /// did not change underneath the probe — otherwise the key may have
    /// been mid-migration and the probe retries on the new entry.
    fn get_routed(&self, route: usize, key: &K) -> (Option<V>, u64, usize) {
        loop {
            let snap = self.dir[route].load(Ordering::Acquire);
            let (tid, fwd) = decode_entry(snap);
            let (found, probes) = match fwd {
                None => self.table(tid).get_unrecorded(key),
                Some(parent) => {
                    self.migration.record_forwarding_hit();
                    // Parent first: the drain inserts into the child
                    // *before* removing from the parent, so a key absent
                    // from the parent is either in the child or nowhere.
                    let (pv, pp) = self.table(parent).get_unrecorded(key);
                    match pv {
                        Some(v) => (Some(v), pp),
                        None => {
                            let (cv, cp) = self.table(tid).get_unrecorded(key);
                            (cv, pp + cp)
                        }
                    }
                }
            };
            if found.is_some() || self.dir[route].load(Ordering::Acquire) == snap {
                return (found, probes, tid);
            }
        }
    }

    /// Routed removal. Returns the removed value and the serving table
    /// at the linearization point.
    ///
    /// Finality: a **removed value** is final even when the entry moved
    /// (the migrator only relocates live copies — it cannot resurrect a
    /// removed key, and when both sides transiently hold a copy the
    /// child's is the newer one and is preferred). A **miss** retries if
    /// the entry changed, because "not found" while the key merely
    /// migrated between probes would not be linearizable.
    fn remove_routed(&self, route: usize, key: &K) -> (Option<V>, usize) {
        loop {
            let snap = self.dir[route].load(Ordering::Acquire);
            let (tid, fwd) = decode_entry(snap);
            let out = match fwd {
                None => self.table(tid).remove_unrecorded(key),
                Some(parent) => {
                    self.migration.record_forwarding_hit();
                    // Parent first, then child; prefer the child's value
                    // (a concurrent forwarded upsert writes the child
                    // before evicting the parent copy, so the child is
                    // never staler).
                    let pv = self.table(parent).remove_unrecorded(key);
                    let cv = self.table(tid).remove_unrecorded(key);
                    cv.or(pv)
                }
            };
            if out.is_some() || self.dir[route].load(Ordering::Acquire) == snap {
                return (out, tid);
            }
        }
    }

    /// The routed upsert engine. `first` / `placed_in` resume a batched
    /// attempt that already succeeded once before the route flipped
    /// underneath it (`None`/`None` for a fresh op).
    ///
    /// The returned report is the **first** successful attempt's — that
    /// attempt is the linearization point, so its updated/placed verdict
    /// is the caller's answer even when a redo re-placed the key.
    fn upsert_routed(
        &self,
        route: usize,
        key: K,
        value: V,
        mut first: Option<InsertReport>,
        mut placed_in: Option<usize>,
    ) -> Result<InsertReport, (K, V)> {
        loop {
            let snap = self.dir[route].load(Ordering::Acquire);
            let (tid, fwd) = decode_entry(snap);
            // Stale cleanup: an earlier attempt's copy lives in a table
            // the directory no longer points at (serving or forwarding).
            if let Some(prev) = placed_in {
                if prev != tid && fwd != Some(prev) {
                    self.table(prev).remove_unrecorded(&key);
                    placed_in = None;
                }
            }
            let attempt: Result<(InsertReport, usize), (K, V)> = match fwd {
                None => self
                    .table(tid)
                    .upsert_unrecorded(key, value)
                    .map(|rep| (rep, tid)),
                Some(parent) => {
                    self.migration.record_forwarding_hit();
                    match self.table(tid).upsert_unrecorded(key, value) {
                        Ok(mut rep) => {
                            // Birth in the child, then evict the stale
                            // parent copy. If one existed, the key was
                            // logically present: the op is an update.
                            let stale = self.table(parent).remove_unrecorded(&key);
                            if stale.is_some() {
                                rep.outcome = InsertOutcome::Updated;
                            }
                            Ok((rep, tid))
                        }
                        Err(pair) => {
                            // Child full. Fall back to rewriting an
                            // existing copy in place — parent first, then
                            // the child once more (the drain may have
                            // moved the key between the two probes).
                            if self.table(parent).update_existing_unrecorded(&key, &value) {
                                Ok((updated_report(), parent))
                            } else if self.table(tid).update_existing_unrecorded(&key, &value) {
                                Ok((updated_report(), tid))
                            } else {
                                Err(pair)
                            }
                        }
                    }
                }
            };
            match attempt {
                Ok((rep, home)) => {
                    if first.is_none() {
                        first = Some(rep);
                    }
                    placed_in = Some(home);
                    if self.dir[route].load(Ordering::Acquire) == snap {
                        return Ok(first.unwrap_or(rep));
                    }
                    // The route flipped under a success: loop — the next
                    // iteration evicts the stale copy and redoes the op
                    // on the new serving table.
                }
                Err(pair) => {
                    if first.is_some() {
                        // A redo failed after an earlier attempt stored a
                        // copy. Evict it so `Err` ("nothing stored") is
                        // truthful; a first attempt that *updated* an
                        // existing key cannot reach here, because the
                        // redo would have found and updated that copy.
                        if let Some(prev) = placed_in {
                            self.table(prev).remove_unrecorded(&key);
                        }
                    }
                    return Err(pair);
                }
            }
        }
    }

    /// Record one public upsert's outcome against `route`'s serving
    /// table (used by paths that only kept the coarse result).
    fn record_routed_upsert(&self, route: usize, out: &Result<InsertReport, (K, V)>) {
        let (tid, _) = self.entry(route);
        match out {
            Ok(rep) => self.table(tid).obs().record_insert(rep),
            Err(_) => self.table(tid).obs().record_insert(&failed_report()),
        }
    }

    // ------------------------------------------------------------------
    // Single-op API (mirrors `ConcurrentMcCuckoo`)
    // ------------------------------------------------------------------

    /// Lock-free lookup in the key's shard (both sides mid-split).
    pub fn get(&self, key: &K) -> Option<V> {
        let (found, probes, tid) = self.get_routed(self.route_of(key), key);
        self.table(tid).obs().record_lookup(found.is_some(), probes);
        found
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert or update in the key's shard. Same contract as
    /// [`ConcurrentMcCuckoo::insert`]: `Ok(true)` = updated in place,
    /// `Ok(false)` = freshly placed, `Err` = rejected with nothing
    /// mutated.
    pub fn insert(&self, key: K, value: V) -> Result<bool, (K, V)> {
        let route = self.route_of(&key);
        let out = self.upsert_routed(route, key, value, None, None);
        self.record_routed_upsert(route, &out);
        out.map(|rep| matches!(rep.outcome, InsertOutcome::Updated))
    }

    /// Insert a key expected to be absent. Same placement engine as
    /// [`Self::insert`] (under an active migration the update scan is
    /// what makes racing redos safe), so a key that does exist is
    /// updated rather than corrupting the copy bookkeeping.
    pub fn insert_new(&self, key: K, value: V) -> Result<(), (K, V)> {
        let route = self.route_of(&key);
        let out = self.upsert_routed(route, key, value, None, None);
        self.record_routed_upsert(route, &out);
        out.map(|_| ())
    }

    /// Remove `key` from its shard, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let (out, tid) = self.remove_routed(self.route_of(key), key);
        self.table(tid).obs().record_remove(out.is_some());
        out
    }

    /// Clear every shard. Serialises with any in-flight split (so a
    /// drain never resurrects wiped keys); each shard then clears under
    /// its own writer lock — there is no cross-shard atomicity (a
    /// concurrent reader may see shard 0 empty while shard 1 still
    /// serves).
    pub fn clear(&self) {
        let _split = self.split_lock.lock();
        for t in 0..self.shard_count() {
            self.table(t).clear();
        }
    }

    /// Exhaustive structural validation of every shard, the route
    /// directory (every entry must name live tables), and the routing
    /// invariant: every stored key is reachable through the directory —
    /// in its serving table, or in the forwarding parent while its slice
    /// is (or was last left) mid-drain. The routing leg assumes no
    /// writer is mid-redo; call at quiescent points.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.shard_count();
        for (r, e) in self.dir.iter().enumerate() {
            let (tid, fwd) = decode_entry(e.load(Ordering::Acquire));
            if tid >= n {
                return Err(format!("route {r}: serving table {tid} of {n} live"));
            }
            if let Some(p) = fwd {
                if p >= n {
                    return Err(format!("route {r}: forwarding parent {p} of {n} live"));
                }
            }
        }
        for t in 0..n {
            self.table(t)
                .check_invariants()
                .map_err(|e| format!("shard {t}: {e}"))?;
            for (k, _) in self.table(t).items() {
                let (tid, fwd) = self.entry(self.route_of(&k));
                if t != tid && fwd != Some(t) {
                    return Err(format!(
                        "shard {t}: stranded copy of a key routed to table {tid}"
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Incremental growth
    // ------------------------------------------------------------------

    /// Split one shard in two without stopping the world.
    ///
    /// Allocates a sibling table for the 1-suffix half of the shard's
    /// route prefix (its hash seed derived from the master seed and the
    /// child prefix, so op-log replays rebuild it identically), flips
    /// the child's directory slice to *serve from the child, forward to
    /// the parent*, then drains the parent stripe-by-stripe: each
    /// migrating key is re-read under its parent stripe locks, copied
    /// into the child, and only then removed. Readers never block —
    /// they keep serving lock-free through the whole drain, probing the
    /// parent as fallback while forwarding is up. Once a full drain pass
    /// moves nothing, the forwarding entries are cleared and the split
    /// is complete.
    ///
    /// If a previous split of `shard` was interrupted (a crashed
    /// migrator leaves forwarding up — consistent, just two-sided),
    /// this call **resumes** that drain instead of allocating a second
    /// child. Splits are serialised by an internal lock; concurrent
    /// callers queue.
    ///
    /// On `failed > 0` (a child placement overflowed) the forwarding
    /// entries stay up: the table keeps serving correctly with
    /// two-sided lookups for that slice, and either a later
    /// `begin_split` of the same shard or a
    /// [`Self::retire_forwarding`] pass (the [`crate::maint`] loop
    /// drives one on a backoff schedule) retries the stragglers.
    pub fn begin_split(&self, shard: usize) -> Result<SplitReport, SplitError> {
        let _split = self.split_lock.lock();
        let ntables = self.shard_count();
        if shard >= ntables {
            return Err(SplitError::UnknownShard {
                shard,
                tables: ntables,
            });
        }
        // A directory entry forwarding *to* `shard` means `shard` is a
        // mid-fill child; one forwarding *from* it means an interrupted
        // drain of `shard` itself — resume it.
        let mut resume_child = None;
        for e in self.dir.iter() {
            let (tid, fwd) = decode_entry(e.load(Ordering::Acquire));
            if fwd == Some(shard) {
                resume_child = Some(tid);
                break;
            }
            if tid == shard {
                if let Some(parent) = fwd {
                    return Err(SplitError::PendingInbound { shard, parent });
                }
            }
        }
        // Checked before the depth leg: at the 256-table ceiling every
        // shard is also depth-exhausted, but the actionable condition is
        // the full directory (no arena slot left to allocate into).
        if resume_child.is_none() && ntables >= DIR_SIZE {
            return Err(SplitError::DirectoryFull { shard });
        }
        if resume_child.is_none() && self.slots[shard].depth.load(Ordering::Acquire) >= DIR_BITS {
            return Err(SplitError::DepthExhausted { shard });
        }
        self.migration.record_split_started();
        let start = Instant::now();
        let (child, resumed) = match resume_child {
            Some(c) => (c, true),
            None => {
                let depth = self.slots[shard].depth.load(Ordering::Acquire);
                let prefix = self.slots[shard].prefix.load(Ordering::Acquire);
                let child = ntables;
                let child_prefix = (prefix << 1) | 1;
                let child_depth = depth + 1;
                let mut cfg = self.config.clone();
                cfg.seed = SplitMix64::new(
                    self.config.seed
                        ^ SPLIT_SEED_SALT
                        ^ (u64::from(child_prefix) << DIR_BITS)
                        ^ u64::from(child_depth),
                )
                .next_u64();
                let table = Box::new(CachePadded::new(ConcurrentMcCuckoo::new(cfg)));
                self.slots[child]
                    .prefix
                    .store(child_prefix, Ordering::Relaxed);
                self.slots[child]
                    .depth
                    .store(child_depth, Ordering::Relaxed);
                self.slots[child]
                    .table
                    .store(Box::into_raw(table), Ordering::Release);
                self.ntables.store(ntables + 1, Ordering::Release);
                // The parent keeps the 0-suffix half of its old prefix.
                self.slots[shard]
                    .prefix
                    .store(prefix << 1, Ordering::Relaxed);
                self.slots[shard]
                    .depth
                    .store(child_depth, Ordering::Relaxed);
                // Flip the child's directory slice: serve from the child,
                // forward misses to the parent. From this store on, new
                // writes for the slice land in the child.
                let shift = DIR_BITS - child_depth;
                for (r, e) in self.dir.iter().enumerate() {
                    if (r as u32) >> shift == child_prefix {
                        e.store(encode_entry(child, Some(shard)), Ordering::Release);
                    }
                }
                // Record the allocation (not resumes — the original
                // entry already covers them) so snapshots can persist
                // the layout after log compaction.
                self.splits.lock().push(shard);
                (child, false)
            }
        };
        let (moved, skipped, failed) = self.drain(shard, child);
        let forwarding_cleared = failed == 0;
        if forwarding_cleared {
            for e in self.dir.iter() {
                let (tid, fwd) = decode_entry(e.load(Ordering::Acquire));
                if tid == child && fwd == Some(shard) {
                    e.store(encode_entry(child, None), Ordering::Release);
                }
            }
        }
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.migration.record_split_finished(forwarding_cleared, us);
        Ok(SplitReport {
            parent: shard,
            child,
            resumed,
            moved,
            skipped,
            failed,
            forwarding_cleared,
        })
    }

    /// The migration cursor: stripe-by-stripe passes over the parent,
    /// moving every key whose directory entry points at `child`, until a
    /// full pass moves nothing (late keys come from writers that read
    /// the directory just before the flip and are caught by their own
    /// re-validation — the extra pass shrinks the window to "writer
    /// currently suspended mid-op").
    fn drain(&self, parent: usize, child: usize) -> (u64, u64, u64) {
        let ptab = self.table(parent);
        let ctab = self.table(child);
        let (mut moved, mut skipped, mut failed) = (0u64, 0u64, 0u64);
        loop {
            let mut pass_moved = 0u64;
            for stripe in 0..ptab.nstripes() {
                for key in ptab.stripe_keys(stripe) {
                    if self.entry(self.route_of(&key)).0 != child {
                        continue;
                    }
                    #[cfg(feature = "testhooks")]
                    crate::testhooks::fire_panic_in_migration();
                    // Insert-if-absent: after a crash-resume (or a racing
                    // forwarded upsert) the child may already hold the
                    // key — the fresher copy wins and the parent's is
                    // still safely retired.
                    let outcome = ptab.migrate_out(&key, |k, v| {
                        #[cfg(feature = "testhooks")]
                        if crate::testhooks::take_fail_child_placement() {
                            return false;
                        }
                        ctab.insert_if_absent_unrecorded(k, v).is_ok()
                    });
                    match outcome {
                        MigrateOutcome::Moved => {
                            moved += 1;
                            pass_moved += 1;
                            self.migration.record_moved();
                        }
                        MigrateOutcome::Skipped => {
                            skipped += 1;
                            self.migration.record_skipped();
                        }
                        MigrateOutcome::Failed => {
                            failed += 1;
                            self.migration.record_move_failure();
                        }
                    }
                }
            }
            if pass_moved == 0 {
                break;
            }
        }
        (moved, skipped, failed)
    }

    // ------------------------------------------------------------------
    // Maintenance hooks (driven by `crate::maint`)
    // ------------------------------------------------------------------

    /// Directory entries currently carrying a forwarding tag. Non-zero
    /// means at least one split is unfinished (crashed migrator or
    /// overflowed child placements) and lookups on those routes pay the
    /// two-sided probe; the maintenance loop drives this back to 0.
    pub fn forwarding_live(&self) -> usize {
        self.dir
            .iter()
            .filter(|e| decode_entry(e.load(Ordering::Acquire)).1.is_some())
            .count()
    }

    /// Retry every unfinished split in one pass: re-drain each distinct
    /// `(child, parent)` forwarding pair and clear its forwarding
    /// entries once the drain fully empties, exactly like the tail of
    /// [`Self::begin_split`]. Readers keep serving lock-free
    /// throughout, and a crash mid-pass leaves the table in the same
    /// consistent, resumable state a crashed migrator would — the next
    /// pass (or a `begin_split` of the parent) picks up where it died.
    ///
    /// A pair whose drain still has `failed > 0` keeps its forwarding
    /// entries for a later pass; [`crate::maint::Maintainer`] schedules
    /// those retries on a backoff.
    pub fn retire_forwarding(&self) -> RetireReport {
        let _split = self.split_lock.lock();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for e in self.dir.iter() {
            let (tid, fwd) = decode_entry(e.load(Ordering::Acquire));
            if let Some(parent) = fwd {
                if !pairs.contains(&(tid, parent)) {
                    pairs.push((tid, parent));
                }
            }
        }
        let mut report = RetireReport {
            attempted: pairs.len(),
            ..RetireReport::default()
        };
        for &(child, parent) in &pairs {
            self.maint.record_retirement_attempt();
            let (moved, skipped, failed) = self.drain(parent, child);
            report.moved += moved;
            report.skipped += skipped;
            report.failed += failed;
            if failed == 0 {
                for e in self.dir.iter() {
                    let (tid, fwd) = decode_entry(e.load(Ordering::Acquire));
                    if tid == child && fwd == Some(parent) {
                        e.store(encode_entry(child, None), Ordering::Release);
                    }
                }
                report.retired += 1;
                self.maint.record_retirement_success();
            }
        }
        report.forwarding_live = self.forwarding_live();
        report
    }

    /// The split serialisation lock, for maintenance passes that need a
    /// layout-stable capture (the compactor holds it across
    /// position-capture + snapshot so no `Split` record can straddle a
    /// truncation boundary).
    pub(crate) fn split_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.split_lock.lock()
    }

    /// The maintenance counter block, for `crate::maint` to record
    /// compactions and snapshot cadence into.
    pub(crate) fn maint_obs(&self) -> &MaintObs {
        &self.maint
    }

    // ------------------------------------------------------------------
    // Batched API
    // ------------------------------------------------------------------

    /// Counting-sort `items`' positions into `groups` buckets. Returns
    /// `(order, offsets)`: `order[offsets[g]..offsets[g + 1]]` holds the
    /// caller positions assigned to group `g`, and `order` as a whole is
    /// a permutation of `0..items.len()`. Two flat allocations, no
    /// per-group `Vec` growth.
    fn group_positions(gids: &[u32], groups: usize) -> (Vec<u32>, Vec<u32>) {
        let mut offsets: Vec<u32> = vec![0; groups + 1];
        let mut order: Vec<u32> = vec![0; gids.len()];
        for &g in gids {
            offsets[g as usize + 1] += 1;
        }
        for g in 0..groups {
            offsets[g + 1] += offsets[g];
        }
        let mut cursor = offsets.clone();
        for (i, &g) in gids.iter().enumerate() {
            order[cursor[g as usize] as usize] = i as u32;
            cursor[g as usize] += 1;
        }
        (order, offsets)
    }

    /// Route every key once and snapshot each touched directory entry
    /// once per batch (equal keys therefore always share a group, even
    /// mid-flip). Returns per-item routes, the entry snapshots, and the
    /// group ids: serving-table id, or `ntables` (the trailing "slow"
    /// group) for keys behind a forwarding entry or a table newer than
    /// `ntables`.
    fn plan_batch<T>(
        &self,
        items: &[T],
        key_of: impl Fn(&T) -> K,
        ntables: usize,
    ) -> (Vec<u32>, [u64; DIR_SIZE], Vec<u32>) {
        let mut entry_snap = [u64::MAX; DIR_SIZE];
        let mut routes = Vec::with_capacity(items.len());
        let mut gids = Vec::with_capacity(items.len());
        for item in items {
            let r = self.route_of(&key_of(item));
            if entry_snap[r] == u64::MAX {
                entry_snap[r] = self.dir[r].load(Ordering::Acquire);
            }
            let (tid, fwd) = decode_entry(entry_snap[r]);
            routes.push(r as u32);
            gids.push(if fwd.is_some() || tid >= ntables {
                ntables as u32
            } else {
                tid as u32
            });
        }
        (routes, entry_snap, gids)
    }

    /// Upsert a batch, taking each involved shard's stripe sweep **once**.
    ///
    /// Results are positional: `out[i]` corresponds to `items[i]`
    /// regardless of how the batch was regrouped internally. Failed items
    /// leave their shard untouched, exactly like single-op inserts. Keys
    /// caught by a racing shard split are transparently redone on their
    /// new serving table.
    pub fn insert_batch(&self, items: &[(K, V)]) -> Vec<Result<bool, (K, V)>> {
        self.obs.record_batch(items.len());
        let ntables = self.shard_count();
        if ntables == 1 {
            return self.table(0).insert_batch(items);
        }
        let (routes, entry_snap, gids) = self.plan_batch(items, |&(k, _)| k, ntables);
        let (order, offsets) = Self::group_positions(&gids, ntables + 1);
        // Every slot is overwritten: `order` is a permutation.
        let mut out: Vec<Result<bool, (K, V)>> = vec![Ok(false); items.len()];
        for g in 0..ntables {
            let (lo, hi) = (offsets[g] as usize, offsets[g + 1] as usize);
            if lo == hi {
                continue;
            }
            let table = self.table(g);
            let sub: Vec<(K, V)> = order[lo..hi].iter().map(|&i| items[i as usize]).collect();
            table.obs().record_batch(sub.len());
            let mut tally = InsertTally::default();
            for (&i, res) in order[lo..hi]
                .iter()
                .zip(table.insert_batch_unrecorded(&sub))
            {
                let idx = i as usize;
                let r = routes[idx] as usize;
                match res {
                    Ok(rep) => {
                        if self.dir[r].load(Ordering::Acquire) == entry_snap[r] {
                            tally.record(&rep);
                            out[idx] = Ok(matches!(rep.outcome, InsertOutcome::Updated));
                        } else {
                            // A split flipped this route mid-batch: redo
                            // from the batched attempt's state and record
                            // the op on its final serving table.
                            let (k, v) = items[idx];
                            let redo = self.upsert_routed(r, k, v, Some(rep), Some(g));
                            self.record_routed_upsert(r, &redo);
                            out[idx] =
                                redo.map(|rep| matches!(rep.outcome, InsertOutcome::Updated));
                        }
                    }
                    Err(pair) => {
                        // Nothing was mutated; final regardless of route
                        // motion (same contract as a single-op reject).
                        tally.record(&failed_report());
                        out[idx] = Err(pair);
                    }
                }
            }
            table.obs().absorb_inserts(&tally);
        }
        // Keys behind active forwarding entries take the per-key routed
        // path (they need two-sided placement, not a table batch).
        let (lo, hi) = (offsets[ntables] as usize, offsets[ntables + 1] as usize);
        for &i in &order[lo..hi] {
            let idx = i as usize;
            let (k, v) = items[idx];
            let r = routes[idx] as usize;
            let res = self.upsert_routed(r, k, v, None, None);
            self.record_routed_upsert(r, &res);
            out[idx] = res.map(|rep| matches!(rep.outcome, InsertOutcome::Updated));
        }
        out
    }

    /// Look up a batch. Lock-free; grouped by shard so consecutive
    /// probes stay within one shard's working set. Results are
    /// positional. Misses raced by a shard split are transparently
    /// re-probed through the forwarding map.
    pub fn lookup_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.obs.record_batch(keys.len());
        let ntables = self.shard_count();
        if ntables == 1 {
            return self.table(0).get_batch(keys);
        }
        let (routes, entry_snap, gids) = self.plan_batch(keys, |&k| k, ntables);
        let (order, offsets) = Self::group_positions(&gids, ntables + 1);
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        for g in 0..ntables {
            let (lo, hi) = (offsets[g] as usize, offsets[g + 1] as usize);
            if lo == hi {
                continue;
            }
            let table = self.table(g);
            let sub: Vec<K> = order[lo..hi].iter().map(|&i| keys[i as usize]).collect();
            table.obs().record_batch(sub.len());
            let mut tally = LookupTally::default();
            for (&i, (found, probes)) in order[lo..hi].iter().zip(table.get_batch_with_probes(&sub))
            {
                let idx = i as usize;
                let r = routes[idx] as usize;
                if found.is_some() || self.dir[r].load(Ordering::Acquire) == entry_snap[r] {
                    tally.record(found.is_some(), probes);
                    out[idx] = found;
                } else {
                    // Miss under a racing flip: the key may be mid-move —
                    // re-probe through the forwarding map.
                    let (v, probes2, tid) = self.get_routed(r, &keys[idx]);
                    self.table(tid).obs().record_lookup(v.is_some(), probes2);
                    out[idx] = v;
                }
            }
            table.obs().absorb_lookups(&tally);
        }
        let (lo, hi) = (offsets[ntables] as usize, offsets[ntables + 1] as usize);
        for &i in &order[lo..hi] {
            let idx = i as usize;
            let (v, probes, tid) = self.get_routed(routes[idx] as usize, &keys[idx]);
            self.table(tid).obs().record_lookup(v.is_some(), probes);
            out[idx] = v;
        }
        out
    }

    /// Remove a batch, taking each involved shard's stripe sweep **once**.
    /// Results are positional; a key duplicated within the batch is
    /// removed by its first occurrence only. Misses raced by a shard
    /// split are transparently redone through the forwarding map.
    pub fn remove_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        self.obs.record_batch(keys.len());
        let ntables = self.shard_count();
        if ntables == 1 {
            return self.table(0).remove_batch(keys);
        }
        let (routes, entry_snap, gids) = self.plan_batch(keys, |&k| k, ntables);
        let (order, offsets) = Self::group_positions(&gids, ntables + 1);
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        for g in 0..ntables {
            let (lo, hi) = (offsets[g] as usize, offsets[g + 1] as usize);
            if lo == hi {
                continue;
            }
            let table = self.table(g);
            let sub: Vec<K> = order[lo..hi].iter().map(|&i| keys[i as usize]).collect();
            table.obs().record_batch(sub.len());
            for (&i, removed) in order[lo..hi]
                .iter()
                .zip(table.remove_batch_unrecorded(&sub))
            {
                let idx = i as usize;
                let r = routes[idx] as usize;
                if removed.is_some() || self.dir[r].load(Ordering::Acquire) == entry_snap[r] {
                    table.obs().record_remove(removed.is_some());
                    out[idx] = removed;
                } else {
                    let (v, tid) = self.remove_routed(r, &keys[idx]);
                    self.table(tid).obs().record_remove(v.is_some());
                    out[idx] = v;
                }
            }
        }
        let (lo, hi) = (offsets[ntables] as usize, offsets[ntables + 1] as usize);
        for &i in &order[lo..hi] {
            let idx = i as usize;
            let (v, tid) = self.remove_routed(routes[idx] as usize, &keys[idx]);
            self.table(tid).obs().record_remove(v.is_some());
            out[idx] = v;
        }
        out
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Every logically-stored pair, deduplicated across an in-flight (or
    /// abandoned) migration: a key transiently present on both sides of
    /// a forwarding entry is emitted once, preferring the child's copy
    /// (the newer one). `live = false` reads each table under its writer
    /// sweep; `live = true` uses the lock-free seqlock scan.
    fn collect_items(&self, live: bool) -> Vec<(K, V)> {
        let mut out = Vec::new();
        // Re-read the table count every pass: a split publishing a child
        // mid-capture appends it at the end, and scanning it picks up
        // the keys the drain moved out of already-scanned parents (the
        // drain inserts into the child before removing from the parent,
        // so every key is caught by at least one of the two scans).
        let mut t = 0;
        while t < self.shard_count() {
            let table = self.table(t);
            let items = if live {
                table.items_live()
            } else {
                table.items()
            };
            for (k, v) in items {
                let (tid, fwd) = self.entry(self.route_of(&k));
                let include = if t == tid {
                    true
                } else if fwd == Some(t) {
                    // Parent-side copy: superseded if the child has one.
                    self.table(tid).get_unrecorded(&k).0.is_none()
                } else {
                    // Stranded copy (a dying writer's leftovers) — not
                    // reachable through the directory, so not state.
                    false
                };
                if include {
                    out.push((k, v));
                }
            }
            t += 1;
        }
        out
    }

    /// Capture a serialisable snapshot: the format version, the master
    /// configuration, the *constructed* shard count, the split history
    /// and every stored pair. The history (parent ids in allocation
    /// order) lets [`Self::try_from_snapshot`] reproduce the grown
    /// layout directly — per-shard and per-child seeds re-derive
    /// deterministically from the master seed — so a snapshot stays
    /// restorable even after log compaction has truncated the `Split`
    /// records that originally grew the table. Snapshots taken
    /// mid-split are safe: the migrating slice is deduplicated,
    /// preferring the newer copy. The caller must ensure no writers are
    /// active while the capture runs (each shard is read under its own
    /// writer lock, but there is no cross-shard atomicity); use
    /// [`Self::snapshot_live`] to capture without blocking writers.
    pub fn to_snapshot(&self) -> ShardedSnapshot<K, V> {
        ShardedSnapshot {
            format: SHARDED_SNAPSHOT_FORMAT,
            config: self.config.clone(),
            shards: self.base_shards,
            splits: self.splits.lock().clone(),
            items: self.collect_items(false),
        }
    }

    /// Background snapshot: like [`Self::to_snapshot`] but every bucket
    /// is read through the lock-free seqlock protocol — **no writer lock
    /// is taken**, so this can run concurrently with writers and the
    /// migration cursor. Each pair is individually consistent; the cut
    /// as a whole is best-effort (exact when quiescent). Restoring a
    /// live capture is always safe: [`Self::try_from_snapshot`] places
    /// items insert-if-absent, so a pair caught twice mid-move restores
    /// once.
    pub fn snapshot_live(&self) -> ShardedSnapshot<K, V> {
        ShardedSnapshot {
            format: SHARDED_SNAPSHOT_FORMAT,
            config: self.config.clone(),
            shards: self.base_shards,
            splits: self.splits.lock().clone(),
            items: self.collect_items(true),
        }
    }

    /// Rebuild a table from a snapshot, reporting any items that no
    /// longer fit instead of dropping them. With an unchanged
    /// configuration every item re-places (the restored table is a
    /// fresh, conflict-free build), so overflow only arises when the
    /// snapshot is edited toward a smaller geometry.
    pub fn try_from_snapshot(
        snapshot: ShardedSnapshot<K, V>,
    ) -> Result<Self, SnapshotOverflow<K, V>> {
        let t = Self::new(snapshot.shards, snapshot.config);
        // Replay the recorded split history before placing any item:
        // the drains are trivial (every table is still empty) and each
        // item then routes straight to its final serving table. A
        // history entry that cannot replay (only possible on a
        // hand-edited snapshot) stops the replay — the table falls back
        // to a coarser but still fully consistent layout.
        for &parent in &snapshot.splits {
            if t.begin_split(parent).is_err() {
                break;
            }
        }
        let mut leftover = Vec::new();
        for (k, v) in snapshot.items {
            // Unrecorded (restores must not count as user inserts) and
            // insert-if-absent (live snapshots may carry a mid-move pair
            // twice; the first copy wins).
            let shard = t.table(t.shard_of(&k));
            if let Err(pair) = shard.insert_if_absent_unrecorded(k, v) {
                leftover.push(pair);
            }
        }
        if leftover.is_empty() {
            Ok(t)
        } else {
            Err(SnapshotOverflow {
                placed: t.collect_items(false),
                leftover,
            })
        }
    }

    /// Crash recovery: restore a snapshot, then replay an op-log tail
    /// (see [`crate::oplog`]) in append order. Replayed operations are
    /// unrecorded — recovery is maintenance, not user traffic — and
    /// replayed `Split` records re-derive the same child seeds the
    /// original table used, so the recovered table is logically
    /// identical to the writer at its last logged operation: same
    /// items, same shard layout, same routing.
    ///
    /// The log slice must be the **tail from the snapshot's capture
    /// position** — a format-3 snapshot already carries its split
    /// history, so replaying `Split` records from *before* the capture
    /// would double-apply them. The [`crate::maint::Compactor`] upholds
    /// this automatically: it captures the position and the snapshot
    /// under the split lock, then truncates everything before it.
    pub fn recover(
        snapshot: ShardedSnapshot<K, V>,
        log: &[crate::oplog::OpRecord<K, V>],
    ) -> Result<Self, crate::oplog::RecoverError> {
        use crate::oplog::{OpRecord, RecoverError};
        let t = Self::try_from_snapshot(snapshot).map_err(|o| RecoverError::SnapshotOverflow {
            leftover: o.leftover.len(),
        })?;
        for (index, rec) in log.iter().enumerate() {
            match rec {
                OpRecord::Insert { key, value } => {
                    let route = t.route_of(key);
                    t.upsert_routed(route, *key, *value, None, None)
                        .map_err(|_| RecoverError::InsertOverflow { index })?;
                }
                OpRecord::Remove { key } => {
                    t.remove_routed(t.route_of(key), key);
                }
                OpRecord::Split { shard } => {
                    t.begin_split(*shard)
                        .map_err(|error| RecoverError::Split { index, error })?;
                }
                OpRecord::Clear => t.clear(),
            }
        }
        Ok(t)
    }

    /// [`Self::try_from_snapshot`], panicking on overflow.
    ///
    /// # Panics
    /// Panics if any snapshot item cannot be re-placed.
    #[deprecated(
        since = "0.9.0",
        note = "aborts the process on overflow; use `try_from_snapshot` and handle `SnapshotOverflow`"
    )]
    pub fn from_snapshot(snapshot: ShardedSnapshot<K, V>) -> Self {
        Self::try_from_snapshot(snapshot).unwrap_or_else(|overflow| {
            panic!(
                "snapshot restore overflowed: {} item(s) unplaceable",
                overflow.leftover.len()
            )
        })
    }
}

/// Report shape for a routed upsert that rewrote an existing copy.
fn updated_report() -> InsertReport {
    InsertReport {
        outcome: InsertOutcome::Updated,
        kickouts: 0,
        collision: false,
        copies_written: 0,
    }
}

/// Report shape for a rejected upsert (nothing mutated — precomputed
/// path).
fn failed_report() -> InsertReport {
    InsertReport {
        outcome: InsertOutcome::Failed,
        kickouts: 0,
        collision: true,
        copies_written: 0,
    }
}

/// Current [`ShardedSnapshot`] serialisation format. Format 1 (implicit
/// — snapshots without a `format` field) predates split-growth; format
/// 2 adds the explicit version so future geometry changes can be
/// rejected instead of silently mis-routing; format 3 adds the split
/// history (`splits`), making grown snapshots self-contained so the op
/// log's `Split` records can be compacted away. Formats 1 and 2 still
/// parse (their history is empty — the layout comes from log replay,
/// as before).
pub const SHARDED_SNAPSHOT_FORMAT: u32 = 3;

/// A serialisable snapshot of a sharded table. Per-shard hash seeds are
/// derived (not stored): rebuilding with the same master `config` and
/// `shards` count reproduces both the shard selector and every shard's
/// hash functions, so restored keys route identically. Snapshots from a
/// split-grown table record the *base* shard count plus the split
/// history; [`ShardedMcCuckoo::try_from_snapshot`] replays the history
/// to reproduce the grown layout without needing the op log's `Split`
/// records (see [`crate::oplog`] and [`crate::maint`]).
#[derive(Debug, Clone)]
pub struct ShardedSnapshot<K, V> {
    /// Serialisation format version (see [`SHARDED_SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Master configuration (pre-derivation seed).
    pub config: McConfig,
    /// Constructed shard count (a non-zero power of two).
    pub shards: usize,
    /// Split history: the parent shard id of every child allocation, in
    /// order. Empty for ungrown tables and for format-1/2 snapshots.
    pub splits: Vec<usize>,
    /// Every stored pair, unordered.
    pub items: Vec<(K, V)>,
}

impl<K: ToJson, V: ToJson> ToJson for ShardedSnapshot<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".to_owned(), self.format.to_json()),
            ("config".to_owned(), self.config.to_json()),
            ("shards".to_owned(), self.shards.to_json()),
            ("splits".to_owned(), self.splits.to_json()),
            ("items".to_owned(), self.items.to_json()),
        ])
    }
}

impl<K: FromJson, V: FromJson> FromJson for ShardedSnapshot<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            j.get(name)
                .ok_or_else(|| JsonError(format!("missing field '{name}'")))
        };
        // Format 1 snapshots predate the field; anything newer than this
        // build understands is rejected with a typed error rather than
        // silently mis-routing.
        let format = match j.get("format") {
            None => 1,
            Some(f) => u32::from_json(f)?,
        };
        if format == 0 || format > SHARDED_SNAPSHOT_FORMAT {
            return Err(JsonError(format!(
                "unsupported sharded snapshot format {format} \
                 (this build reads 1..={SHARDED_SNAPSHOT_FORMAT})"
            )));
        }
        Ok(Self {
            format,
            config: FromJson::from_json(field("config")?)?,
            shards: FromJson::from_json(field("shards")?)?,
            // Formats 1 and 2 predate the split history; their grown
            // layout (if any) comes from op-log `Split` replay.
            splits: match j.get("splits") {
                None => Vec::new(),
                Some(s) => FromJson::from_json(s)?,
            },
            items: FromJson::from_json(field("items")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn table(shards: usize, buckets: usize, seed: u64) -> ShardedMcCuckoo<u64, u64> {
        ShardedMcCuckoo::new(shards, McConfig::paper(buckets, seed))
    }

    #[test]
    fn routing_is_total_deterministic_and_spread() {
        let t = table(8, 64, 1);
        let mut per_shard = [0usize; 8];
        for k in 0u64..4_000 {
            let s = t.shard_of(&k);
            assert!(s < 8);
            assert_eq!(s, t.shard_of(&k), "routing must be deterministic");
            per_shard[s] += 1;
        }
        // 4000 keys over 8 shards: each shard sees a non-trivial share.
        for (s, &n) in per_shard.iter().enumerate() {
            assert!(n > 250, "shard {s} got only {n} of 4000 keys");
        }
    }

    #[test]
    fn single_shard_degenerates_cleanly() {
        let t = table(1, 128, 2);
        for k in 0u64..100 {
            assert_eq!(t.insert(k, k * 2), Ok(false));
        }
        assert_eq!(t.shard_of(&17), 0);
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(&17), Some(34));
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panics() {
        let _ = table(3, 16, 0);
    }

    #[test]
    #[should_panic(expected = "at most 256")]
    fn over_directory_capacity_panics() {
        let _ = table(512, 16, 0);
    }

    #[test]
    fn ops_route_to_the_selected_shard_only() {
        let t = table(4, 64, 3);
        for k in 0u64..200 {
            t.insert(k, k).unwrap();
        }
        for k in 0u64..200 {
            let home = t.shard_of(&k);
            for s in 0..t.shard_count() {
                assert_eq!(
                    t.shard(s).get(&k).is_some(),
                    s == home,
                    "key {k} visible in shard {s}, home {home}"
                );
            }
        }
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn batched_ops_match_singles_and_preserve_order() {
        let singles = table(4, 128, 4);
        let batched = table(4, 128, 4);
        let mut keys = UniqueKeys::new(5);
        let items: Vec<(u64, u64)> = keys
            .take_vec(600)
            .into_iter()
            .map(|k| (k, k ^ 42))
            .collect();
        let mut expect = Vec::new();
        for &(k, v) in &items {
            expect.push(singles.insert(k, v));
        }
        assert_eq!(batched.insert_batch(&items), expect, "positional results");
        assert_eq!(batched.len(), singles.len());
        let ks: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        assert_eq!(batched.lookup_batch(&ks), singles.lookup_batch(&ks));
        // Upsert the same batch: every result must be `Ok(true)` in order.
        let bumped: Vec<(u64, u64)> = items.iter().map(|&(k, v)| (k, v + 1)).collect();
        assert!(batched.insert_batch(&bumped).iter().all(|r| *r == Ok(true)));
        assert_eq!(batched.lookup_batch(&ks[..5]).len(), 5);
        assert_eq!(
            batched.remove_batch(&ks),
            singles
                .lookup_batch(&ks)
                .iter()
                .map(|v| v.map(|x| x + 1))
                .collect::<Vec<_>>()
        );
        assert!(batched.is_empty());
        batched.check_invariants().unwrap();
    }

    #[test]
    fn differential_against_hashmap_through_batches() {
        let t = table(4, 64, 6);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(7);
        for round in 0..60u64 {
            let mut batch = Vec::new();
            for j in 0..32 {
                batch.push((rng.next_below(500), round * 100 + j));
            }
            // The model applies the batch in order, skipping rejects —
            // the same semantics insert_batch promises.
            let results = t.insert_batch(&batch);
            for (&(k, v), r) in batch.iter().zip(&results) {
                if r.is_ok() {
                    model.insert(k, v);
                }
            }
            let probe: Vec<u64> = (0..16).map(|_| rng.next_below(500)).collect();
            assert_eq!(
                t.lookup_batch(&probe),
                probe
                    .iter()
                    .map(|k| model.get(k).copied())
                    .collect::<Vec<_>>()
            );
            let victims: Vec<u64> = (0..8).map(|_| rng.next_below(500)).collect();
            let removed = t.remove_batch(&victims);
            for (k, r) in victims.iter().zip(removed) {
                assert_eq!(r, model.remove(k), "remove {k} in round {round}");
            }
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn writers_on_distinct_shards_run_concurrently() {
        // Four threads insert disjoint batches concurrently; nothing is
        // lost and every shard stays structurally valid. On a multicore
        // host the threads genuinely overlap; the correctness claim holds
        // for every interleaving either way.
        let t = std::sync::Arc::new(table(4, 1_024, 8));
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let t = t.clone();
                scope.spawn(move || {
                    let base = 1 + w * per_thread;
                    let items: Vec<(u64, u64)> =
                        (base..base + per_thread).map(|k| (k, k * 3)).collect();
                    for chunk in items.chunks(64) {
                        for r in t.insert_batch(chunk) {
                            r.expect("4k keys in 12k buckets must fit");
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * per_thread as usize);
        for k in 1..=4 * per_thread {
            assert_eq!(t.get(&k), Some(k * 3), "key {k} lost");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_round_trip_preserves_items_and_routing() {
        let t = table(4, 128, 11);
        let mut keys = UniqueKeys::new(12);
        let ks = keys.take_vec(800);
        for &k in &ks {
            t.insert_new(k, k ^ 0xBEEF).unwrap();
        }
        let snap = t.to_snapshot();
        assert_eq!(snap.format, SHARDED_SNAPSHOT_FORMAT);
        assert_eq!(snap.shards, 4);
        assert_eq!(snap.items.len(), 800);
        // Serialise through jsonlite and back.
        let snap: ShardedSnapshot<u64, u64> =
            FromJson::from_json(&jsonlite::parse(&jsonlite::to_string(&snap)).unwrap()).unwrap();
        let r = ShardedMcCuckoo::try_from_snapshot(snap).unwrap();
        assert_eq!(r.len(), 800);
        for &k in &ks {
            // Same value, and — because per-shard seeds re-derive from
            // the master seed — the same home shard as before.
            assert_eq!(r.get(&k), Some(k ^ 0xBEEF));
            assert_eq!(r.shard_of(&k), t.shard_of(&k));
            assert!(r.shard(r.shard_of(&k)).contains(&k));
        }
        r.check_invariants().unwrap();
        // Restores are unrecorded: no inserts appear in the obs layer.
        assert_eq!(r.stats().ops.inserts, 0);
    }

    #[test]
    fn legacy_snapshot_without_format_field_still_parses() {
        let t = table(2, 64, 21);
        for k in 0u64..50 {
            t.insert(k, k).unwrap();
        }
        let mut json = jsonlite::to_string(&t.to_snapshot());
        // Strip the format and split-history fields to fake a faithful
        // pre-versioning (format 1) snapshot: `{config, shards, items}`.
        json = json.replacen("\"format\":3,", "", 1);
        json = json.replacen("\"splits\":[],", "", 1);
        assert!(!json.contains("format") && !json.contains("splits"));
        let snap: ShardedSnapshot<u64, u64> =
            FromJson::from_json(&jsonlite::parse(&json).unwrap()).unwrap();
        assert_eq!(snap.format, 1);
        let r = ShardedMcCuckoo::try_from_snapshot(snap).unwrap();
        assert_eq!(r.len(), 50);
        for k in 0u64..50 {
            assert_eq!(r.get(&k), Some(k));
        }
    }

    #[test]
    fn unknown_snapshot_format_is_a_typed_error() {
        let t = table(2, 64, 22);
        t.insert(1, 1).unwrap();
        let json =
            jsonlite::to_string(&t.to_snapshot()).replacen("\"format\":3", "\"format\":99", 1);
        let err =
            <ShardedSnapshot<u64, u64> as FromJson>::from_json(&jsonlite::parse(&json).unwrap())
                .unwrap_err();
        assert!(err.0.contains("format 99"), "got: {}", err.0);
    }

    #[test]
    fn stats_aggregate_and_per_shard_breakdown() {
        let t = table(4, 128, 13);
        let mut keys = UniqueKeys::new(14);
        let items: Vec<(u64, u64)> = keys.take_vec(300).into_iter().map(|k| (k, k)).collect();
        for r in t.insert_batch(&items) {
            r.unwrap();
        }
        let hits = t.lookup_batch(&items.iter().map(|&(k, _)| k).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.is_some()));
        assert_eq!(t.get(&u64::MAX), None);
        let s = t.stats();
        assert_eq!(s.ops.inserts, 300);
        assert_eq!(s.ops.lookup_hits, 300);
        assert_eq!(s.ops.lookup_misses, 1);
        assert_eq!(s.shards.len(), 4);
        assert_eq!(s.shards.iter().map(|sh| sh.ops.inserts).sum::<u64>(), 300);
        assert_eq!(s.shards.iter().map(|sh| sh.len).sum::<usize>(), t.len());
        // Caller-level batches (2) plus the per-shard sub-batches.
        assert!(s.batch_hist.count >= 2);
        assert!(s.occupancy_skew() >= 1.0);
        assert!(s.hottest_shard().is_some());
    }

    #[test]
    fn clear_empties_every_shard() {
        let t = table(2, 64, 9);
        for k in 0u64..100 {
            t.insert(k, k).unwrap();
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        for k in 0u64..100 {
            assert_eq!(t.get(&k), None);
        }
        // Reusable after clear.
        t.insert(5, 55).unwrap();
        assert_eq!(t.get(&5), Some(55));
        t.check_invariants().unwrap();
    }

    // ------------------------------------------------------------------
    // Incremental growth
    // ------------------------------------------------------------------

    #[test]
    fn split_moves_exactly_the_sibling_keys_and_loses_nothing() {
        let t = table(2, 256, 31);
        let mut keys = UniqueKeys::new(32);
        let ks = keys.take_vec(600);
        for &k in &ks {
            t.insert(k, k ^ 7).unwrap();
        }
        let before_shard0: usize = t.shard(0).len();
        let report = t.begin_split(0).unwrap();
        assert_eq!(report.parent, 0);
        assert_eq!(report.child, 2);
        assert!(!report.resumed);
        assert!(report.forwarding_cleared, "clean split must complete");
        assert_eq!(report.failed, 0);
        assert_eq!(t.shard_count(), 3);
        // Nothing lost, every key still found, and the moved keys now
        // live (exclusively) in the child.
        assert_eq!(t.len(), ks.len());
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k ^ 7), "key {k} lost by split");
            assert!(t.shard(t.shard_of(&k)).contains(&k));
        }
        assert_eq!(
            t.shard(0).len() + report.moved as usize,
            before_shard0,
            "parent shrank by exactly the moved keys"
        );
        assert_eq!(t.shard(2).len(), report.moved as usize);
        t.check_invariants().unwrap();
        // Migration counters surfaced through stats.
        let s = t.stats();
        assert_eq!(s.migration.splits_started, 1);
        assert_eq!(s.migration.splits_completed, 1);
        assert_eq!(s.migration.keys_moved, report.moved);
        assert_eq!(s.migration.split_hist.count, 1);
    }

    #[test]
    fn repeated_splits_grow_until_depth_exhausts() {
        let t = table(1, 512, 33);
        for k in 0u64..300 {
            t.insert(k, k).unwrap();
        }
        // A 1-shard table owns all 8 selector bits: 8 successive splits
        // of shard 0 narrow it to a single route entry.
        for round in 0..8 {
            let report = t.begin_split(0).unwrap();
            assert!(report.forwarding_cleared, "split {round} incomplete");
            t.check_invariants().unwrap();
        }
        assert_eq!(t.shard_count(), 9);
        assert_eq!(
            t.begin_split(0),
            Err(SplitError::DepthExhausted { shard: 0 })
        );
        assert_eq!(t.len(), 300);
        for k in 0u64..300 {
            assert_eq!(t.get(&k), Some(k), "key {k} lost across 8 splits");
        }
        // All ops still behave after heavy growth.
        for k in 300u64..400 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.len(), 400);
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_errors_are_typed() {
        let t = table(2, 64, 34);
        assert_eq!(
            t.begin_split(7),
            Err(SplitError::UnknownShard {
                shard: 7,
                tables: 2
            })
        );
    }

    #[test]
    fn split_is_deterministic_for_replay() {
        // Same seed, same op sequence, same splits → identical routing
        // and identical per-shard contents (the recovery contract).
        let a = table(2, 128, 35);
        let b = table(2, 128, 35);
        for k in 0u64..400 {
            a.insert(k, k * 3).unwrap();
            b.insert(k, k * 3).unwrap();
        }
        a.begin_split(0).unwrap();
        b.begin_split(0).unwrap();
        a.begin_split(1).unwrap();
        b.begin_split(1).unwrap();
        assert_eq!(a.shard_count(), b.shard_count());
        for k in 0u64..400 {
            assert_eq!(a.shard_of(&k), b.shard_of(&k), "routing diverged at {k}");
            assert_eq!(a.get(&k), b.get(&k));
        }
        for s in 0..a.shard_count() {
            assert_eq!(a.shard(s).len(), b.shard(s).len(), "shard {s} diverged");
        }
    }

    #[test]
    fn writers_and_readers_run_through_a_split() {
        // A migration thread splits shard 0 while writers upsert and
        // readers probe; every key must be continuously visible.
        let t = std::sync::Arc::new(table(2, 2_048, 36));
        let n = 3_000u64;
        for k in 0..n {
            t.insert(k, k).unwrap();
        }
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for w in 0..2 {
                let t = t.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(100 + w);
                    while !stop.load(Ordering::Relaxed) {
                        let k = rng.next_below(n);
                        t.insert(k, k + 1_000_000).unwrap();
                    }
                });
            }
            {
                let t = t.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(200);
                    while !stop.load(Ordering::Relaxed) {
                        let keys: Vec<u64> = (0..32).map(|_| rng.next_below(n)).collect();
                        for (k, v) in keys.iter().zip(t.lookup_batch(&keys)) {
                            let v = v.unwrap_or_else(|| panic!("key {k} vanished mid-split"));
                            assert!(v == *k || v == *k + 1_000_000, "key {k}: torn value {v}");
                        }
                    }
                });
            }
            let report = t.begin_split(0).unwrap();
            assert!(report.forwarding_cleared);
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(t.len(), n as usize);
        for k in 0..n {
            let v = t.get(&k).unwrap_or_else(|| panic!("key {k} lost"));
            assert!(v == k || v == k + 1_000_000);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_mid_drain_restores_every_key_once() {
        // Simulate a mid-migration snapshot by hand-flipping the routes
        // is impractical; instead capture a *live* snapshot concurrently
        // with a real split and restore it.
        let t = std::sync::Arc::new(table(2, 1_024, 37));
        let n = 2_000u64;
        for k in 0..n {
            t.insert(k, k ^ 0xA5).unwrap();
        }
        let snap = std::thread::scope(|scope| {
            let t2 = t.clone();
            let h = scope.spawn(move || t2.snapshot_live());
            t.begin_split(0).unwrap();
            h.join().unwrap()
        });
        let r = ShardedMcCuckoo::try_from_snapshot(snap).unwrap();
        assert_eq!(r.len(), n as usize, "live snapshot lost or duped keys");
        for k in 0..n {
            assert_eq!(r.get(&k), Some(k ^ 0xA5));
        }
        r.check_invariants().unwrap();
    }

    #[test]
    fn recovery_replays_log_into_an_identical_table() {
        use crate::oplog::{parse_log, OpLog, OpRecord, VecSink};
        let t = table(2, 256, 40);
        let baseline = t.to_snapshot();
        let sink = VecSink::new();
        let log = OpLog::new(sink.clone());
        let mut keys = UniqueKeys::new(41);
        let ks = keys.take_vec(400);
        for &k in &ks {
            let v = k.wrapping_mul(7);
            t.insert(k, v).unwrap();
            log.record(&OpRecord::Insert { key: k, value: v });
        }
        for &k in ks.iter().take(50) {
            t.remove(&k);
            log.record(&OpRecord::<u64, u64>::Remove { key: k });
        }
        t.begin_split(0).unwrap();
        log.record(&OpRecord::<u64, u64>::Split { shard: 0 });
        t.insert(ks[0], 123).unwrap();
        log.record(&OpRecord::Insert {
            key: ks[0],
            value: 123,
        });
        // Recover from the empty baseline + the serialised log.
        let ops = parse_log::<u64, u64>(&sink.lines()).unwrap();
        let r = ShardedMcCuckoo::recover(baseline, &ops).unwrap();
        // Logically identical: same items, same shard layout, same
        // per-shard residency (seeds re-derive deterministically).
        assert_eq!(r.len(), t.len());
        assert_eq!(r.shard_count(), t.shard_count());
        let mut a = t.to_snapshot().items;
        let mut b = r.to_snapshot().items;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "recovered items diverge from the writer");
        for &(k, _) in &a {
            assert_eq!(r.shard_of(&k), t.shard_of(&k), "routing diverged at {k}");
        }
        for s in 0..t.shard_count() {
            assert_eq!(r.shard(s).len(), t.shard(s).len(), "shard {s} diverged");
        }
        r.check_invariants().unwrap();
        // Replay is maintenance: no user ops recorded.
        assert_eq!(r.stats().ops.inserts, 0);
    }

    #[test]
    fn recovery_errors_are_typed_not_panics() {
        use crate::oplog::{OpRecord, RecoverError};
        let t = table(2, 64, 42);
        let snap = t.to_snapshot();
        let bad_split: Vec<OpRecord<u64, u64>> = vec![OpRecord::Split { shard: 9 }];
        let err = ShardedMcCuckoo::recover(snap, &bad_split)
            .err()
            .expect("split of a nonexistent shard must be rejected");
        assert_eq!(
            err,
            RecoverError::Split {
                index: 0,
                error: SplitError::UnknownShard {
                    shard: 9,
                    tables: 2
                },
            }
        );
    }

    #[cfg(feature = "testhooks")]
    #[test]
    fn crashed_migrator_leaves_table_consistent_and_resumable() {
        let t = std::sync::Arc::new(table(2, 256, 38));
        let mut keys = UniqueKeys::new(39);
        let ks = keys.take_vec(500);
        for &k in &ks {
            t.insert(k, k + 1).unwrap();
        }
        // Crash the migrator on its 20th key visit.
        let crashed = {
            let t = t.clone();
            std::thread::spawn(move || {
                crate::testhooks::arm_panic_in_migration(20);
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.begin_split(0)));
                crate::testhooks::disarm();
                r.is_err()
            })
            .join()
            .unwrap()
        };
        assert!(crashed, "the armed hook must fire mid-drain");
        // The forwarding map keeps every key visible and the table
        // structurally consistent; writes still work.
        assert_eq!(t.len(), ks.len());
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k + 1), "key {k} lost in the crash");
        }
        t.check_invariants().unwrap();
        assert_eq!(t.remove(&ks[0]), Some(ks[0] + 1));
        t.insert(ks[0], 999).unwrap();
        assert_eq!(t.get(&ks[0]), Some(999));
        // The child exists but its fill is unfinished: splitting the
        // child is refused, resuming the parent completes the drain.
        assert_eq!(
            t.begin_split(2),
            Err(SplitError::PendingInbound {
                shard: 2,
                parent: 0
            })
        );
        let report = t.begin_split(0).unwrap();
        assert!(report.resumed, "second split must resume, not re-allocate");
        assert!(report.forwarding_cleared);
        assert_eq!(t.shard_count(), 3, "resume must not allocate a 4th table");
        assert_eq!(t.len(), ks.len());
        for &k in &ks {
            let expect = if k == ks[0] { 999 } else { k + 1 };
            assert_eq!(t.get(&k), Some(expect));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_at_directory_cap_is_a_typed_error() {
        let t = table(1, 64, 77);
        for k in 0u64..100 {
            t.insert(k, k + 7).unwrap();
        }
        // Breadth-first: split every live table once per round, doubling
        // 1 → 2 → … → 256 (the directory's hard ceiling).
        while t.shard_count() < DIR_SIZE {
            let n = t.shard_count();
            for s in 0..n {
                let r = t.begin_split(s).unwrap();
                assert!(r.forwarding_cleared);
            }
        }
        assert_eq!(t.shard_count(), DIR_SIZE);
        // Every arena slot is live: the refusal is the full directory
        // (checked ahead of depth — at the ceiling both hold, but the
        // actionable condition is "no slot left to allocate into").
        for s in 0..DIR_SIZE {
            assert_eq!(
                t.begin_split(s),
                Err(SplitError::DirectoryFull { shard: s })
            );
        }
        // The table keeps serving at the ceiling.
        assert_eq!(t.len(), 100);
        for k in 0u64..100 {
            assert_eq!(t.get(&k), Some(k + 7));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_split_history_restores_grown_layout_without_the_log() {
        let t = table(2, 128, 33);
        let mut keys = UniqueKeys::new(34);
        let ks = keys.take_vec(300);
        for &k in &ks {
            t.insert(k, k ^ 7).unwrap();
        }
        t.begin_split(0).unwrap();
        t.begin_split(1).unwrap();
        t.begin_split(0).unwrap();
        assert_eq!(t.shard_count(), 5);
        let snap = t.to_snapshot();
        assert_eq!(snap.format, SHARDED_SNAPSHOT_FORMAT);
        assert_eq!(snap.splits, vec![0, 1, 0]);
        // JSON round-trip, then restore with no op log at all — the
        // history alone reproduces the grown layout.
        let snap: ShardedSnapshot<u64, u64> =
            FromJson::from_json(&jsonlite::parse(&jsonlite::to_string(&snap)).unwrap()).unwrap();
        assert_eq!(snap.splits, vec![0, 1, 0]);
        let r = ShardedMcCuckoo::try_from_snapshot(snap).unwrap();
        assert_eq!(r.shard_count(), t.shard_count());
        assert_eq!(r.len(), t.len());
        for &k in &ks {
            assert_eq!(r.get(&k), Some(k ^ 7));
            assert_eq!(r.shard_of(&k), t.shard_of(&k), "routing diverged at {k}");
        }
        for s in 0..t.shard_count() {
            assert_eq!(
                r.shard(s).len(),
                t.shard(s).len(),
                "shard {s} residency diverged"
            );
        }
        r.check_invariants().unwrap();
    }

    #[test]
    fn explicit_format_1_and_2_snapshots_parse_without_split_history() {
        let t = table(2, 64, 23);
        for k in 0u64..40 {
            t.insert(k, k * 3).unwrap();
        }
        let current = jsonlite::to_string(&t.to_snapshot());
        for old in [1u32, 2] {
            // A faithful older snapshot: explicit version, no `splits`
            // field (that history is a format-3 addition).
            let json = current
                .replacen("\"format\":3", &format!("\"format\":{old}"), 1)
                .replacen("\"splits\":[],", "", 1);
            assert!(!json.contains("splits"));
            let snap: ShardedSnapshot<u64, u64> =
                FromJson::from_json(&jsonlite::parse(&json).unwrap()).unwrap();
            assert_eq!(snap.format, old);
            assert!(snap.splits.is_empty());
            let r = ShardedMcCuckoo::try_from_snapshot(snap).unwrap();
            assert_eq!(r.len(), 40);
            for k in 0u64..40 {
                assert_eq!(r.get(&k), Some(k * 3));
            }
        }
    }

    #[test]
    fn format_zero_snapshots_are_rejected() {
        let t = table(2, 64, 24);
        t.insert(5, 50).unwrap();
        let json =
            jsonlite::to_string(&t.to_snapshot()).replacen("\"format\":3", "\"format\":0", 1);
        let err =
            <ShardedSnapshot<u64, u64> as FromJson>::from_json(&jsonlite::parse(&json).unwrap())
                .unwrap_err();
        assert!(err.0.contains("format 0"), "got: {}", err.0);
    }

    #[test]
    fn retire_forwarding_without_unfinished_splits_is_a_noop() {
        let t = table(2, 64, 25);
        for k in 0u64..60 {
            t.insert(k, k).unwrap();
        }
        t.begin_split(0).unwrap(); // completes — nothing left to retire
        assert_eq!(t.forwarding_live(), 0);
        let r = t.retire_forwarding();
        assert_eq!(r, RetireReport::default());
        assert_eq!(t.stats().maint.retirements_attempted, 0);
    }

    #[cfg(feature = "testhooks")]
    #[test]
    fn failed_child_placement_is_retired_by_retire_forwarding() {
        let t = table(2, 256, 51);
        let mut keys = UniqueKeys::new(52);
        let ks = keys.take_vec(400);
        for &k in &ks {
            t.insert(k, k + 3).unwrap();
        }
        // Force every child placement to fail: the split completes
        // degraded, with the slice's keys still in the parent behind
        // live forwarding entries.
        crate::testhooks::arm_fail_child_placement(u32::MAX);
        let report = t.begin_split(0).unwrap();
        crate::testhooks::disarm();
        assert!(report.failed > 0, "the armed hook must fail placements");
        assert!(!report.forwarding_cleared);
        let live = t.forwarding_live();
        assert!(live > 0);
        assert_eq!(t.stats().maint.forwarding_live, live as u64);
        // Degraded, not broken: every key still readable two-sided.
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k + 3));
        }
        // One retirement pass (hook disarmed) finishes the drain and
        // clears the forwarding entries.
        let r = t.retire_forwarding();
        assert_eq!(r.attempted, 1);
        assert_eq!(r.retired, 1);
        assert_eq!(r.failed, 0);
        assert!(r.moved > 0);
        assert_eq!(r.forwarding_live, 0);
        assert_eq!(t.forwarding_live(), 0);
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k + 3));
        }
        let s = t.stats();
        assert_eq!(s.maint.retirements_attempted, 1);
        assert_eq!(s.maint.retirements_succeeded, 1);
        assert_eq!(s.maint.forwarding_live, 0);
        t.check_invariants().unwrap();
    }

    #[cfg(feature = "testhooks")]
    #[test]
    fn crashed_retirement_is_consistent_and_resumable() {
        let t = std::sync::Arc::new(table(2, 256, 53));
        let mut keys = UniqueKeys::new(54);
        let ks = keys.take_vec(400);
        for &k in &ks {
            t.insert(k, k + 9).unwrap();
        }
        // Degrade a split, then crash the *retirement* mid-drain.
        crate::testhooks::arm_fail_child_placement(u32::MAX);
        assert!(t.begin_split(0).unwrap().failed > 0);
        crate::testhooks::disarm();
        assert!(t.forwarding_live() > 0);
        let crashed = {
            let t = t.clone();
            std::thread::spawn(move || {
                crate::testhooks::arm_panic_in_migration(10);
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    t.retire_forwarding()
                }));
                crate::testhooks::disarm();
                r.is_err()
            })
            .join()
            .unwrap()
        };
        assert!(crashed, "the armed hook must fire mid-retirement");
        // Exactly like a crashed migrator: consistent, two-sided, and
        // resumable by the next pass.
        assert!(t.forwarding_live() > 0);
        assert_eq!(t.len(), ks.len());
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k + 9), "key {k} lost in the crash");
        }
        t.check_invariants().unwrap();
        let r = t.retire_forwarding();
        assert_eq!(r.retired, r.attempted);
        assert_eq!(r.forwarding_live, 0);
        for &k in &ks {
            assert_eq!(t.get(&k), Some(k + 9));
        }
        t.check_invariants().unwrap();
    }
}
