//! Logical snapshots — persistence for the McCuckoo tables.
//!
//! A [`TableSnapshot`] captures the table's configuration and its
//! logical content (every stored `(key, value)` pair, including the
//! stash). Restoring rebuilds the table by re-running the insertion
//! procedure; because the configuration carries the hash seed, the
//! restored table serves the same keys with the same candidate sets.
//!
//! Snapshots are deliberately *logical*, not bit-exact: physical copy
//! placement depends on insertion order, which a snapshot does not
//! preserve. Everything observable through the public API — membership,
//! values, deletion mode, screening soundness — is preserved; access
//! counts may differ marginally after a restore. This keeps the format
//! stable across internal layout changes, which is what a production
//! system wants from a persistence format.

use hash_kit::KeyHash;
use jsonlite::{FromJson, Json, JsonError, ToJson};

use crate::blocked::{BlockedConfig, BlockedLayout, BlockedMcCuckoo};
use crate::config::McConfig;
use crate::engine::Engine;
use crate::single::{McCuckoo, SingleLayout};

/// A serialisable snapshot of a single-slot table.
#[derive(Debug, Clone)]
pub struct TableSnapshot<K, V> {
    /// The configuration the table was built with (seed included).
    pub config: McConfig,
    /// Every stored pair (main table and stash), unordered.
    pub items: Vec<(K, V)>,
}

impl<K: ToJson, V: ToJson> ToJson for TableSnapshot<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".to_owned(), self.config.to_json()),
            ("items".to_owned(), self.items.to_json()),
        ])
    }
}

impl<K: FromJson, V: FromJson> FromJson for TableSnapshot<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            config: FromJson::from_json(
                j.get("config")
                    .ok_or_else(|| JsonError("missing field 'config'".into()))?,
            )?,
            items: FromJson::from_json(
                j.get("items")
                    .ok_or_else(|| JsonError("missing field 'items'".into()))?,
            )?,
        })
    }
}

/// A serialisable snapshot of a blocked table.
#[derive(Debug, Clone)]
pub struct BlockedSnapshot<K, V> {
    /// Base configuration.
    pub config: McConfig,
    /// Slots per bucket.
    pub slots: usize,
    /// Aggressive-lookup extension flag.
    pub aggressive_lookup: bool,
    /// Every stored pair, unordered.
    pub items: Vec<(K, V)>,
}

impl<K: ToJson, V: ToJson> ToJson for BlockedSnapshot<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".to_owned(), self.config.to_json()),
            ("slots".to_owned(), self.slots.to_json()),
            (
                "aggressive_lookup".to_owned(),
                self.aggressive_lookup.to_json(),
            ),
            ("items".to_owned(), self.items.to_json()),
        ])
    }
}

impl<K: FromJson, V: FromJson> FromJson for BlockedSnapshot<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            j.get(name)
                .ok_or_else(|| JsonError(format!("missing field '{name}'")))
        };
        Ok(Self {
            config: FromJson::from_json(field("config")?)?,
            slots: FromJson::from_json(field("slots")?)?,
            aggressive_lookup: FromJson::from_json(field("aggressive_lookup")?)?,
            items: FromJson::from_json(field("items")?)?,
        })
    }
}

/// A snapshot restore that could not re-place every item — only possible
/// with [`crate::StashPolicy::None`] when the snapshot was taken of an
/// overfull table (or restored into a smaller geometry). **Nothing is
/// lost**: every snapshot item is handed back, partitioned into the ones
/// that fit and the ones that did not.
#[derive(Debug)]
pub struct SnapshotOverflow<K, V> {
    /// Items that were successfully re-placed before the overflow was
    /// detected (drained back out of the partial table).
    pub placed: Vec<(K, V)>,
    /// Items that could not be placed, in no particular order. Because
    /// restores re-run the insertion procedure, an unplaceable entry is
    /// the last item *evicted* by a failed kick walk, which need not be
    /// the pair that was offered (cf. [`crate::engine::McFull`]).
    pub leftover: Vec<(K, V)>,
}

impl<K, V> SnapshotOverflow<K, V> {
    /// All snapshot items, placed and unplaced alike.
    pub fn into_items(self) -> Vec<(K, V)> {
        let mut items = self.placed;
        items.extend(self.leftover);
        items
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> Engine<K, V, SingleLayout> {
    /// Capture a logical snapshot of the table.
    pub fn to_snapshot(&self) -> TableSnapshot<K, V> {
        TableSnapshot {
            config: self.config_snapshot(),
            items: self.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Rebuild a table from a snapshot, reporting any items that could
    /// not be re-placed instead of dropping them. With a stash
    /// configured, restores cannot overflow (failed walks spill to the
    /// stash as usual); with [`crate::StashPolicy::None`] an overfull
    /// snapshot returns [`SnapshotOverflow`] carrying every item.
    pub fn try_from_snapshot(
        snapshot: TableSnapshot<K, V>,
    ) -> Result<Self, SnapshotOverflow<K, V>> {
        let mut t = McCuckoo::new(snapshot.config);
        let mut leftover = Vec::new();
        for (k, v) in snapshot.items {
            // Unrecorded: restoring is maintenance, not user inserts.
            if let Err(full) = t.insert_new_unrecorded(k, v) {
                leftover.push(full.evicted);
            }
        }
        if leftover.is_empty() {
            Ok(t)
        } else {
            Err(SnapshotOverflow {
                placed: t.drain_items(),
                leftover,
            })
        }
    }

    /// Rebuild a table from a snapshot.
    ///
    /// # Panics
    /// Panics — in every build profile — if an item cannot be re-placed
    /// (stash-less overfull snapshot). Use
    /// [`Engine::try_from_snapshot`] to recover the unplaced items
    /// instead; data is never silently dropped.
    #[deprecated(
        since = "0.9.0",
        note = "aborts the process on overflow; use `try_from_snapshot` and handle `SnapshotOverflow`"
    )]
    pub fn from_snapshot(snapshot: TableSnapshot<K, V>) -> Self {
        Self::try_from_snapshot(snapshot).unwrap_or_else(|overflow| {
            panic!(
                "snapshot restore overflowed: {} item(s) unplaceable",
                overflow.leftover.len()
            )
        })
    }
}

impl<K: KeyHash + Eq + Clone, V: Clone> Engine<K, V, BlockedLayout> {
    /// Capture a logical snapshot of the table.
    pub fn to_snapshot(&self) -> BlockedSnapshot<K, V> {
        BlockedSnapshot {
            config: self.config_snapshot(),
            slots: self.slots_per_bucket(),
            aggressive_lookup: self.aggressive_lookup_enabled(),
            items: self.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Rebuild a table from a snapshot, reporting any items that could
    /// not be re-placed instead of dropping them (see
    /// [`Engine::try_from_snapshot`]).
    pub fn try_from_snapshot(
        snapshot: BlockedSnapshot<K, V>,
    ) -> Result<Self, SnapshotOverflow<K, V>> {
        let mut t = BlockedMcCuckoo::new(BlockedConfig {
            base: snapshot.config,
            slots: snapshot.slots,
            aggressive_lookup: snapshot.aggressive_lookup,
        });
        let mut leftover = Vec::new();
        for (k, v) in snapshot.items {
            if let Err(full) = t.insert_new_unrecorded(k, v) {
                leftover.push(full.evicted);
            }
        }
        if leftover.is_empty() {
            Ok(t)
        } else {
            Err(SnapshotOverflow {
                placed: t.drain_items(),
                leftover,
            })
        }
    }

    /// Rebuild a table from a snapshot.
    ///
    /// # Panics
    /// Panics — in every build profile — if an item cannot be re-placed
    /// (stash-less overfull snapshot). Use
    /// [`Engine::try_from_snapshot`] to recover the unplaced items
    /// instead; data is never silently dropped.
    #[deprecated(
        since = "0.9.0",
        note = "aborts the process on overflow; use `try_from_snapshot` and handle `SnapshotOverflow`"
    )]
    pub fn from_snapshot(snapshot: BlockedSnapshot<K, V>) -> Self {
        Self::try_from_snapshot(snapshot).unwrap_or_else(|overflow| {
            panic!(
                "snapshot restore overflowed: {} item(s) unplaceable",
                overflow.leftover.len()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeletionMode;
    use workloads::UniqueKeys;

    #[test]
    fn single_snapshot_roundtrips_through_json() {
        let mut t: McCuckoo<u64, String> =
            McCuckoo::new(McConfig::paper(512, 1).with_deletion(DeletionMode::Reset));
        let mut keys = UniqueKeys::new(2);
        let ks = keys.take_vec(1_000);
        for &k in &ks {
            t.insert_new(k, format!("v{k}")).unwrap();
        }
        // Mix in some deletions so the snapshot sees a scarred table.
        for &k in ks.iter().take(200) {
            t.remove(&k);
        }
        let snap = t.to_snapshot();
        let json = jsonlite::to_string(&snap);
        let back: TableSnapshot<u64, String> = jsonlite::from_str(&json).unwrap();
        let restored = McCuckoo::try_from_snapshot(back).expect("stash-backed restore fits");
        assert_eq!(restored.len(), t.len());
        for &k in ks.iter().take(200) {
            assert_eq!(restored.get(&k), None);
        }
        for &k in ks.iter().skip(200) {
            assert_eq!(restored.get(&k), Some(&format!("v{k}")));
        }
        restored.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_preserves_stash_content() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper(100, 3).with_maxloop(20));
        let mut keys = UniqueKeys::new(4);
        let ks = keys.take_vec(300); // 100% load: stash in use
        for &k in &ks {
            t.insert_new(k, k).unwrap();
        }
        assert!(t.stash_len() > 0);
        let restored = McCuckoo::try_from_snapshot(t.to_snapshot()).expect("stash absorbs all");
        for &k in &ks {
            assert_eq!(restored.get(&k), Some(&k), "key lost through snapshot");
        }
        restored.check_invariants().unwrap();
    }

    #[test]
    fn blocked_snapshot_roundtrips() {
        let mut t: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
            base: McConfig::paper_with_deletion(128, 5),
            slots: 3,
            aggressive_lookup: true,
        });
        let mut keys = UniqueKeys::new(6);
        let ks = keys.take_vec(1_000);
        for &k in &ks {
            t.insert_new(k, k.wrapping_mul(3)).unwrap();
        }
        let json = jsonlite::to_string(&t.to_snapshot());
        let back: BlockedSnapshot<u64, u64> = jsonlite::from_str(&json).unwrap();
        assert_eq!(back.slots, 3);
        assert!(back.aggressive_lookup);
        let restored = BlockedMcCuckoo::try_from_snapshot(back).expect("restore fits");
        for &k in &ks {
            assert_eq!(restored.get(&k), Some(&(k.wrapping_mul(3))));
        }
        restored.check_invariants().unwrap();
    }

    /// The bug this module used to have: a stash-less overfull snapshot
    /// silently dropped the items that failed re-insertion (behind a
    /// `debug_assert`, i.e. invisibly in release builds). The fallible
    /// path must hand every single item back. This test is part of the
    /// release-mode CI run, so the guarantee is proven without
    /// debug assertions.
    #[test]
    fn try_from_snapshot_reports_overflow_without_losing_items() {
        use crate::config::StashPolicy;
        // 8 buckets × 3 sub-tables = 24 slots, no stash: 200 items
        // cannot possibly fit.
        let config = McConfig {
            stash: StashPolicy::None,
            maxloop: 8,
            ..McConfig::paper(8, 9)
        };
        let items: Vec<(u64, u64)> = (0..200u64).map(|k| (k, k.wrapping_mul(7))).collect();
        let snap = TableSnapshot {
            config,
            items: items.clone(),
        };
        let overflow = McCuckoo::try_from_snapshot(snap).expect_err("24 slots cannot hold 200");
        assert!(!overflow.leftover.is_empty(), "overflow must be reported");
        // Nothing lost: placed ∪ leftover is a permutation of the
        // snapshot (leftovers are walk evictees, so order and even the
        // placed/leftover split are not the offered order).
        let mut all = overflow.into_items();
        all.sort_unstable();
        let mut want = items;
        want.sort_unstable();
        assert_eq!(all, want, "every snapshot item must be handed back");
    }

    /// The deprecated shape must keep its documented panic (it exists
    /// precisely so old callers fail loudly instead of losing data).
    #[test]
    #[should_panic(expected = "snapshot restore overflowed")]
    #[allow(deprecated)]
    fn from_snapshot_panics_rather_than_dropping() {
        use crate::config::StashPolicy;
        let config = McConfig {
            stash: StashPolicy::None,
            maxloop: 8,
            ..McConfig::paper(8, 11)
        };
        let snap = TableSnapshot {
            config,
            items: (0..200u64).map(|k| (k, k)).collect(),
        };
        let _ = McCuckoo::from_snapshot(snap);
    }

    #[test]
    fn blocked_try_from_snapshot_overflow_preserves_items() {
        use crate::config::StashPolicy;
        let snap = BlockedSnapshot {
            config: McConfig {
                stash: StashPolicy::None,
                maxloop: 8,
                ..McConfig::paper(4, 13)
            },
            slots: 2,
            aggressive_lookup: false,
            items: (0..200u64).map(|k| (k, k ^ 0xA5)).collect(),
        };
        let items = snap.items.clone();
        let overflow =
            BlockedMcCuckoo::try_from_snapshot(snap).expect_err("24 slots cannot hold 200");
        assert!(!overflow.leftover.is_empty());
        let mut all = overflow.into_items();
        all.sort_unstable();
        let mut want = items;
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn try_from_snapshot_ok_roundtrip() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(256, 15));
        let mut keys = UniqueKeys::new(16);
        let ks = keys.take_vec(400);
        for &k in &ks {
            t.insert_new(k, k + 1).unwrap();
        }
        let restored = McCuckoo::try_from_snapshot(t.to_snapshot()).expect("fits");
        for &k in &ks {
            assert_eq!(restored.get(&k), Some(&(k + 1)));
        }
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restored_table_remains_fully_operational() {
        let mut t: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(256, 7));
        let mut keys = UniqueKeys::new(8);
        for &k in &keys.take_vec(400) {
            t.insert_new(k, k).unwrap();
        }
        let mut restored = McCuckoo::try_from_snapshot(t.to_snapshot()).expect("restore fits");
        // Insert, update, delete on the restored instance.
        let more = keys.take_vec(200);
        for &k in &more {
            restored.insert_new(k, k).unwrap();
        }
        for &k in &more {
            restored.insert(k, k + 1).unwrap();
            assert_eq!(restored.get(&k), Some(&(k + 1)));
            assert_eq!(restored.remove(&k), Some(k + 1));
        }
        restored.check_invariants().unwrap();
    }
}
