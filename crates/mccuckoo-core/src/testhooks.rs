//! Deterministic fault injection for the differential testkit.
//!
//! Only compiled under the `testhooks` feature. The hooks let a test
//! deliberately corrupt the multi-copy bookkeeping — e.g. skip the
//! counter reset of a deleted copy — to prove that the invariant
//! validators and the fuzzing harness actually catch and shrink real
//! violations. Production builds never enable this feature; when they
//! accidentally do, every hook is inert until armed.
//!
//! Hooks are thread-local so parallel tests cannot interfere.

use std::cell::Cell;

thread_local! {
    /// How many upcoming deletions should skip the counter reset of
    /// their first copy location. `u32::MAX` means "every deletion".
    static SKIP_COUNTER_RESETS: Cell<u32> = const { Cell::new(0) };

    /// How many upcoming kick-walk executions should panic after the
    /// path is planned and its stripes are held, but before any bucket
    /// is mutated. `u32::MAX` means "every kick walk".
    static PANIC_IN_KICK: Cell<u32> = const { Cell::new(0) };

    /// Countdown to a migration-cursor crash: the N-th key visit of a
    /// `begin_split` drain panics before that key is touched. 0 = inert.
    static PANIC_IN_MIGRATION: Cell<u32> = const { Cell::new(0) };

    /// How many upcoming child placements of a split drain should be
    /// forced to fail (reported as `MigrateOutcome::Failed`, the key
    /// staying in the parent behind forwarding). `u32::MAX` = all.
    static FAIL_CHILD_PLACEMENT: Cell<u32> = const { Cell::new(0) };

    /// Countdown to a compactor crash: the N-th compaction on this
    /// thread panics after its snapshot capture but before the log is
    /// truncated. 0 = inert.
    static PANIC_IN_COMPACTION: Cell<u32> = const { Cell::new(0) };
}

/// Arm the fault: the next `n` calls to `McCuckoo::remove` that find the
/// key will *not* reset the counter of the first copy location, leaving
/// a counter claiming a live copy in a vacated bucket. Pass `u32::MAX`
/// to keep the fault active for the rest of the thread (until
/// [`disarm`]).
pub fn arm_skip_counter_reset(n: u32) {
    SKIP_COUNTER_RESETS.with(|c| c.set(n));
}

/// Arm the fault: the next `n` kick-walk executions on this thread
/// panic mid-collision-resolution. In `ConcurrentMcCuckoo`'s striped
/// and sweep insert paths the panic fires while the walk's stripe locks
/// are held, before any bucket mutation — proving a dying writer
/// releases its stripes (RAII guards) and leaves the table intact. In
/// the sequential engine it fires at the top of each random-walk hop,
/// and for the plan-first policies (BFS / bubbling) after the plan
/// succeeds but before the first mutation — proving a planned insert
/// that dies there is a strict physical no-op. Pass `u32::MAX` to keep
/// the fault active for the rest of the thread (until [`disarm`]).
pub fn arm_panic_in_kick(n: u32) {
    PANIC_IN_KICK.with(|c| c.set(n));
}

/// Arm the fault: the `n`-th upcoming key visit of a shard-split drain
/// (`ShardedMcCuckoo::begin_split`) on this thread panics before the
/// key is migrated — the migrator dies mid-split with the forwarding
/// map still active, proving readers and writers stay consistent and a
/// later `begin_split` resumes and finishes the drain. `n` counts down:
/// `1` crashes on the very next visited key.
pub fn arm_panic_in_migration(n: u32) {
    PANIC_IN_MIGRATION.with(|c| c.set(n));
}

/// Arm the fault: the next `n` child placements attempted by a split
/// drain (or a retirement pass) on this thread are forced to fail, as
/// if the child table overflowed — the key stays in the parent and the
/// split finishes degraded, with its forwarding entries live. This is
/// how tests manufacture the "permanent forwarding" state the
/// maintenance loop exists to retire. Pass `u32::MAX` to fail every
/// placement (until [`disarm`]).
pub fn arm_fail_child_placement(n: u32) {
    FAIL_CHILD_PLACEMENT.with(|c| c.set(n));
}

/// Arm the fault: the `n`-th upcoming compaction on this thread panics
/// after capturing its snapshot but *before* truncating the log — the
/// compactor dies at the worst point of the capture-then-truncate
/// protocol, proving a crashed compaction loses nothing (the log is
/// still intact and the previous baseline still replays). `n` counts
/// down: `1` crashes the very next compaction.
pub fn arm_panic_in_compaction(n: u32) {
    PANIC_IN_COMPACTION.with(|c| c.set(n));
}

/// Disarm all hooks on this thread.
pub fn disarm() {
    SKIP_COUNTER_RESETS.with(|c| c.set(0));
    PANIC_IN_KICK.with(|c| c.set(0));
    PANIC_IN_MIGRATION.with(|c| c.set(0));
    FAIL_CHILD_PLACEMENT.with(|c| c.set(0));
    PANIC_IN_COMPACTION.with(|c| c.set(0));
}

/// Consumed by the deletion path: returns `true` if this deletion should
/// skip its first counter reset.
pub(crate) fn take_skip_counter_reset() -> bool {
    SKIP_COUNTER_RESETS.with(|c| {
        let n = c.get();
        if n == 0 {
            return false;
        }
        if n != u32::MAX {
            c.set(n - 1);
        }
        true
    })
}

/// Consumed by the kick-walk paths (concurrent and sequential): panics
/// mid-operation if the hook is armed (the injected writer death).
pub(crate) fn fire_panic_in_kick() {
    let armed = PANIC_IN_KICK.with(|c| {
        let n = c.get();
        if n == 0 {
            return false;
        }
        if n != u32::MAX {
            c.set(n - 1);
        }
        true
    });
    if armed {
        panic!("testhooks: injected panic mid-kick-walk");
    }
}

/// Consumed by the split drain's child-placement closure: returns
/// `true` if this placement should be reported as failed.
pub(crate) fn take_fail_child_placement() -> bool {
    FAIL_CHILD_PLACEMENT.with(|c| {
        let n = c.get();
        if n == 0 {
            return false;
        }
        if n != u32::MAX {
            c.set(n - 1);
        }
        true
    })
}

/// Consumed by the compactor between snapshot capture and truncation:
/// panics when the armed countdown reaches zero (the injected compactor
/// death).
pub(crate) fn fire_panic_in_compaction() {
    let fire = PANIC_IN_COMPACTION.with(|c| {
        let n = c.get();
        if n == 0 {
            return false;
        }
        c.set(n - 1);
        n == 1
    });
    if fire {
        panic!("testhooks: injected panic mid-compaction");
    }
}

/// Consumed once per key visit by the split drain: panics when the
/// armed countdown reaches zero (the injected migrator death).
pub(crate) fn fire_panic_in_migration() {
    let fire = PANIC_IN_MIGRATION.with(|c| {
        let n = c.get();
        if n == 0 {
            return false;
        }
        c.set(n - 1);
        n == 1
    });
    if fire {
        panic!("testhooks: injected panic mid-migration");
    }
}
