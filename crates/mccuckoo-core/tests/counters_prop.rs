//! Property tests for the packed on-chip counter array.

use mccuckoo_core::{CounterArray, DeletionMode, McConfig, McCuckoo};
use proptest::prelude::*;

proptest! {
    /// Width selection: counters hold every value up to the ceiling and
    /// the packing never clips a value (saturation ceiling respected for
    /// every (len, max_value) geometry).
    #[test]
    fn packing_roundtrips_at_every_width(
        len in 1usize..500,
        max_value in 1u8..16,
        seed in any::<u64>(),
    ) {
        let mut c = CounterArray::new(len, max_value);
        let mut rng = hash_kit::SplitMix64::new(seed);
        let vals: Vec<u8> = (0..len)
            .map(|_| rng.next_below(max_value as u64 + 1) as u8)
            .collect();
        for (i, &v) in vals.iter().enumerate() {
            c.set(i, v);
        }
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(c.get(i), v, "position {}", i);
        }
        // The 2-bit ceiling of the paper: d = 3 fits in 2 bits.
        prop_assert!(c.bits_per_counter() <= 4);
    }

    /// Tombstones round-trip through set/clear cycles: a tombstone reads
    /// 0, survives until re-occupied, and disappears on `set`.
    #[test]
    fn tombstone_roundtrip_against_model(
        len in 1usize..200,
        ops in prop::collection::vec((any::<prop::sample::Index>(), 0u8..5), 1..400),
    ) {
        let mut c = CounterArray::new(len, 3);
        // Model: (value, tombstoned) per slot.
        let mut model = vec![(0u8, false); len];
        for (idx, action) in ops {
            let i = idx.index(len);
            match action {
                0 => {
                    c.set_tombstone(i);
                    model[i] = (0, true);
                }
                a => {
                    let v = a - 1; // 0..=3
                    c.set(i, v);
                    model[i] = (v, false);
                }
            }
        }
        for (i, &(v, tomb)) in model.iter().enumerate() {
            prop_assert_eq!(c.get(i), v);
            prop_assert_eq!(c.is_tombstone(i), tomb);
            prop_assert_eq!(c.reads_empty_for_insert(i), v == 0);
            prop_assert_eq!(c.reads_zero_for_lookup(i), v == 0 && !tomb);
        }
    }

    /// Counter/copy agreement after an insert–delete storm: whatever the
    /// interleaving, each live key's copy count matches its counters and
    /// the exhaustive validator stays green.
    #[test]
    fn counter_copy_agreement_after_storms(
        seed in any::<u64>(),
        steps in prop::collection::vec((0u64..48, any::<bool>()), 1..300),
    ) {
        let mut t: McCuckoo<u64, u64> =
            McCuckoo::new(McConfig::paper(32, seed).with_deletion(DeletionMode::Reset));
        let mut live = std::collections::HashSet::new();
        for (step, (k, is_insert)) in steps.into_iter().enumerate() {
            if is_insert {
                t.insert(k, step as u64).unwrap();
                live.insert(k);
            } else {
                let removed = t.remove(&k);
                prop_assert_eq!(removed.is_some(), live.remove(&k));
            }
        }
        let inv = t.check_invariants();
        prop_assert!(inv.is_ok(), "invariants: {:?}", inv);
        for &k in &live {
            let copies = t.copy_count(&k);
            prop_assert!(
                (1..=3).contains(&copies),
                "key {} has {} copies", k, copies
            );
            prop_assert_eq!(t.get(&k).is_some(), true);
        }
        prop_assert_eq!(t.len(), live.len());
    }
}
