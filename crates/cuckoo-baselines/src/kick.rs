//! Collision-resolution strategies for the baseline tables.

/// How a table resolves a full set of candidate locations (§II.B of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KickPolicy {
    /// Evict a uniformly random candidate, re-inserting the victim; on
    /// subsequent steps the bucket the victim came from is excluded so the
    /// walk cannot immediately undo itself. This is the strategy the
    /// paper's experiments use (§III.D: "in this paper random-walk is
    /// used").
    #[default]
    RandomWalk,
    /// Breadth-first search for the shortest relocation path, then execute
    /// the moves from the path's end backwards. Finds minimal paths but
    /// costs many exploratory reads — the "inefficient in practice"
    /// original strategy the paper contrasts random-walk with.
    Bfs,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_random_walk() {
        assert_eq!(KickPolicy::default(), KickPolicy::RandomWalk);
    }
}
