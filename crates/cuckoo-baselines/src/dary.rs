//! Standard d-ary Cuckoo hashing (Pagh & Rodler / Fotakis et al.),
//! single item per bucket — the paper's "Cuckoo" baseline — with the
//! optional CHS on-chip stash (Kirsch–Mitzenmacher–Wieder, paper ref \[22\]).
//!
//! One sub-table per hash function; an item lives in exactly one of its
//! `d` candidate buckets. On insertion, candidates are probed in function
//! order and the item takes the first empty bucket; if none is empty a
//! [`KickPolicy`] resolves the collision by relocating items, bounded by
//! `maxloop`. Failures go to the stash when one is configured, otherwise
//! the final evicted item is handed back to the caller (who would rehash).

use hash_kit::{BucketFamily, FamilyKind, KeyHash, SplitMix64};
use mccuckoo_core::obs::Obs;
use mccuckoo_core::{McTable, TableStats};
use mem_model::{InsertOutcome, InsertReport, MemMeter};

use crate::kick::KickPolicy;

/// Configuration of a [`DaryCuckoo`] table.
#[derive(Debug, Clone)]
pub struct CuckooConfig {
    /// Number of hash functions / sub-tables (the paper uses 3).
    pub d: usize,
    /// Buckets per sub-table; total capacity is `d * buckets_per_table`.
    pub buckets_per_table: usize,
    /// Kick-out budget before an insertion is declared failed.
    pub maxloop: u32,
    /// Collision-resolution strategy.
    pub policy: KickPolicy,
    /// Hash family construction.
    pub family: FamilyKind,
    /// Master seed (hash seeds and the random walk derive from it).
    pub seed: u64,
    /// CHS stash capacity; 0 disables the stash.
    pub stash_capacity: usize,
}

impl CuckooConfig {
    /// The paper's setup: ternary Cuckoo, random-walk, maxloop 500,
    /// no stash.
    pub fn paper(buckets_per_table: usize, seed: u64) -> Self {
        Self {
            d: 3,
            buckets_per_table,
            maxloop: 500,
            policy: KickPolicy::RandomWalk,
            family: FamilyKind::Independent,
            seed,
            stash_capacity: 0,
        }
    }

    /// CHS: same but with the classic small on-chip stash of size 4.
    pub fn chs(buckets_per_table: usize, seed: u64) -> Self {
        Self {
            stash_capacity: 4,
            ..Self::paper(buckets_per_table, seed)
        }
    }
}

/// Insertion failure: the relocation budget ran out and there is no stash
/// space; `evicted` is the item that fell out of the table.
///
/// Under [`KickPolicy::Bfs`] no moves are executed on failure, so
/// `evicted` is the inserted item itself. Under
/// [`KickPolicy::RandomWalk`] the inserted item was placed during the
/// walk and `evicted` is the last displaced victim — classic cuckoo
/// semantics, where the caller is expected to rehash (or re-offer the
/// evicted item). In both cases the table stays internally consistent:
/// every item other than `evicted` remains findable.
#[derive(Debug)]
pub struct CuckooFull<K, V> {
    /// The item that could not be placed.
    pub evicted: (K, V),
    /// Instrumentation of the failed insertion.
    pub report: InsertReport,
}

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
}

/// A sub-table membership change produced by an insertion's relocation
/// chain. Consumed by helpers that maintain per-sub-table filters
/// (see [`crate::bloom_guided`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterMove<K> {
    /// `key` now resides in sub-table `table`.
    Enter {
        /// The key that moved.
        key: K,
        /// Destination sub-table index.
        table: usize,
    },
    /// `key` no longer resides in sub-table `table`.
    Leave {
        /// The key that moved.
        key: K,
        /// Source sub-table index.
        table: usize,
    },
}

/// Optional relocation logger threaded through the insertion paths.
type MoveLog<'a, K> = Option<&'a mut Vec<FilterMove<K>>>;

#[inline]
fn log_move<K: Clone>(log: &mut MoveLog<'_, K>, mv: FilterMove<K>) {
    if let Some(log) = log {
        log.push(mv);
    }
}

/// Standard d-ary Cuckoo hash table, one item per bucket.
///
/// Keys must be distinct: inserting a key that is already present creates
/// a second independent entry (classic cuckoo semantics; the evaluation
/// datasets contain distinct keys). Use [`DaryCuckoo::get`] first when
/// upsert behaviour is needed.
#[derive(Debug)]
pub struct DaryCuckoo<K, V> {
    family: BucketFamily,
    d: usize,
    n: usize,
    maxloop: u32,
    policy: KickPolicy,
    buckets: Vec<Option<Entry<K, V>>>,
    stash: Vec<(K, V)>,
    stash_capacity: usize,
    main_len: usize,
    rng: SplitMix64,
    meter: MemMeter,
    obs: Obs,
}

impl<K: KeyHash + Eq + Clone, V> DaryCuckoo<K, V> {
    /// Build a table from `config`.
    ///
    /// # Panics
    /// Panics if `d < 2` or `buckets_per_table == 0`.
    pub fn new(config: CuckooConfig) -> Self {
        assert!(config.d >= 2, "cuckoo hashing needs at least 2 functions");
        assert!(config.buckets_per_table > 0, "table must be non-empty");
        let family = BucketFamily::new(
            config.family,
            config.d,
            config.buckets_per_table,
            config.seed,
        );
        let total = config.d * config.buckets_per_table;
        let mut buckets = Vec::with_capacity(total);
        buckets.resize_with(total, || None);
        Self {
            family,
            d: config.d,
            n: config.buckets_per_table,
            maxloop: config.maxloop,
            policy: config.policy,
            buckets,
            stash: Vec::new(),
            stash_capacity: config.stash_capacity,
            main_len: 0,
            rng: SplitMix64::new(config.seed ^ 0xBA5E_1133_57A5_4B1D),
            meter: MemMeter::new(),
            obs: Obs::default(),
        }
    }

    /// Number of hash functions.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Items in the main table.
    pub fn main_len(&self) -> usize {
        self.main_len
    }

    /// Items in the stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Total stored items.
    pub fn len(&self) -> usize {
        self.main_len + self.stash.len()
    }

    /// True if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bucket count (`d * buckets_per_table`).
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// Load ratio: stored items / capacity (the paper's definition).
    pub fn load_ratio(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Access meter (off-chip reads/writes, stash traffic).
    pub fn meter(&self) -> &MemMeter {
        &self.meter
    }

    /// Observability snapshot (op counters, probe/kick histograms).
    pub fn stats(&self) -> TableStats {
        self.obs.snapshot()
    }

    /// The recorder itself, for wrappers that layer extra probes on top
    /// of this table (see [`crate::bloom_guided`]).
    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Global bucket index of candidate `i` for `key`.
    #[inline]
    fn slot_index(&self, key: &K, i: usize) -> usize {
        i * self.n + self.family.bucket(key, i)
    }

    fn candidates(&self, key: &K) -> Vec<usize> {
        (0..self.d).map(|i| self.slot_index(key, i)).collect()
    }

    /// Insert a fresh key.
    ///
    /// On success reports placement instrumentation; on failure (budget
    /// exhausted, stash full or absent) returns the evicted item.
    pub fn insert(&mut self, key: K, value: V) -> Result<InsertReport, CuckooFull<K, V>> {
        let out = self.insert_inner(key, value, &mut None);
        self.record_insert_outcome(&out);
        out
    }

    fn record_insert_outcome(&self, out: &Result<InsertReport, CuckooFull<K, V>>) {
        match out {
            Ok(report) => self.obs.record_insert(report),
            Err(full) => self.obs.record_insert(&full.report),
        }
    }

    /// Insert while recording every sub-table membership change of the
    /// relocation chain (for external per-sub-table filters). The log is
    /// returned on failure too — the moves up to the failure really
    /// happened.
    #[allow(clippy::type_complexity)]
    pub fn insert_logged(
        &mut self,
        key: K,
        value: V,
    ) -> Result<(InsertReport, Vec<FilterMove<K>>), (CuckooFull<K, V>, Vec<FilterMove<K>>)> {
        let mut log = Vec::new();
        let out = self.insert_inner(key, value, &mut Some(&mut log));
        self.record_insert_outcome(&out);
        match out {
            Ok(report) => Ok((report, log)),
            Err(full) => Err((full, log)),
        }
    }

    fn insert_inner(
        &mut self,
        key: K,
        value: V,
        log: &mut MoveLog<'_, K>,
    ) -> Result<InsertReport, CuckooFull<K, V>> {
        let cands = self.candidates(&key);
        // Probe candidates in order; first empty wins.
        for (i, &b) in cands.iter().enumerate() {
            self.meter.offchip_read(1);
            if self.buckets[b].is_none() {
                log_move(
                    log,
                    FilterMove::Enter {
                        key: key.clone(),
                        table: i,
                    },
                );
                self.buckets[b] = Some(Entry { key, value });
                self.meter.offchip_write(1);
                self.main_len += 1;
                return Ok(InsertReport::clean(1));
            }
        }
        // Real collision: all candidates occupied.
        match self.policy {
            KickPolicy::RandomWalk => self.insert_random_walk(key, value, cands, log),
            KickPolicy::Bfs => self.insert_bfs(key, value, cands, log),
        }
    }

    /// Probe only sub-table `i` for `key` (used by filter-guided
    /// lookups that already know which sub-tables can hold the key).
    pub fn get_in_table(&self, key: &K, i: usize) -> Option<&V> {
        let b = self.slot_index(key, i);
        self.meter.offchip_read(1);
        match &self.buckets[b] {
            Some(e) if e.key == *key => Some(&e.value),
            _ => None,
        }
    }

    /// Rewrite `key`'s value in place if it resides in sub-table `i`.
    pub(crate) fn update_in_table(&mut self, key: &K, i: usize, value: V) -> bool {
        let b = self.slot_index(key, i);
        self.meter.offchip_read(1);
        match &mut self.buckets[b] {
            Some(e) if e.key == *key => {
                e.value = value;
                self.meter.offchip_write(1);
                true
            }
            _ => false,
        }
    }

    /// Remove `key` if it resides in sub-table `i`.
    pub fn remove_in_table(&mut self, key: &K, i: usize) -> Option<V> {
        let b = self.slot_index(key, i);
        self.meter.offchip_read(1);
        if self.buckets[b].as_ref().is_some_and(|e| e.key == *key) {
            let e = self.buckets[b].take().unwrap();
            self.meter.offchip_write(1);
            self.main_len -= 1;
            return Some(e.value);
        }
        None
    }

    /// Random-walk eviction: place the carried item in a random candidate,
    /// carry the victim, never stepping straight back.
    fn insert_random_walk(
        &mut self,
        key: K,
        value: V,
        first_cands: Vec<usize>,
        log: &mut MoveLog<'_, K>,
    ) -> Result<InsertReport, CuckooFull<K, V>> {
        let mut kickouts = 0u32;
        let mut carried = Entry { key, value };
        let mut cands = first_cands;
        let mut prev_bucket = usize::MAX;
        loop {
            if kickouts >= self.maxloop {
                return self.fail_or_stash(carried, kickouts);
            }
            // Choose a victim among candidates, excluding the bucket the
            // carried item was just evicted from.
            let choices: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&b| b != prev_bucket)
                .collect();
            let victim_bucket = choices[self.rng.next_below(choices.len() as u64) as usize];
            // The victim's content was already read during the probe that
            // found this bucket occupied; swap in place costs one write.
            log_move(
                log,
                FilterMove::Enter {
                    key: carried.key.clone(),
                    table: victim_bucket / self.n,
                },
            );
            let victim = self.buckets[victim_bucket]
                .replace(carried)
                .expect("victim bucket must be occupied");
            log_move(
                log,
                FilterMove::Leave {
                    key: victim.key.clone(),
                    table: victim_bucket / self.n,
                },
            );
            self.meter.offchip_write(1);
            kickouts += 1;
            carried = victim;
            prev_bucket = victim_bucket;
            // Probe the carried item's candidates for an empty bucket.
            cands = self.candidates(&carried.key);
            let mut empty = None;
            for &b in &cands {
                if b == prev_bucket {
                    continue; // where it came from; known occupied
                }
                self.meter.offchip_read(1);
                if self.buckets[b].is_none() {
                    empty = Some(b);
                    break;
                }
            }
            if let Some(b) = empty {
                log_move(
                    log,
                    FilterMove::Enter {
                        key: carried.key.clone(),
                        table: b / self.n,
                    },
                );
                self.buckets[b] = Some(carried);
                self.meter.offchip_write(1);
                self.main_len += 1;
                return Ok(InsertReport {
                    outcome: InsertOutcome::Placed,
                    kickouts,
                    collision: true,
                    copies_written: 1,
                });
            }
        }
    }

    /// BFS relocation: search for the shortest eviction path within the
    /// node budget, then execute it from the far end backwards.
    fn insert_bfs(
        &mut self,
        key: K,
        value: V,
        first_cands: Vec<usize>,
        log: &mut MoveLog<'_, K>,
    ) -> Result<InsertReport, CuckooFull<K, V>> {
        struct Node {
            bucket: usize,
            parent: usize, // index into nodes; usize::MAX for roots
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut visited = std::collections::HashSet::new();
        for &b in &first_cands {
            visited.insert(b);
            nodes.push(Node {
                bucket: b,
                parent: usize::MAX,
            });
        }
        let mut head = 0usize;
        let mut expanded = 0u32;
        let mut goal: Option<(usize, usize)> = None; // (empty bucket, parent node)
        'search: while head < nodes.len() {
            if expanded >= self.maxloop {
                break;
            }
            let node_idx = head;
            head += 1;
            expanded += 1;
            let occupant_key_cands = {
                let occ = self.buckets[nodes[node_idx].bucket]
                    .as_ref()
                    .expect("BFS nodes are occupied buckets");
                self.candidates(&occ.key)
            };
            for b in occupant_key_cands {
                if !visited.insert(b) {
                    continue;
                }
                self.meter.offchip_read(1);
                if self.buckets[b].is_none() {
                    goal = Some((b, node_idx));
                    break 'search;
                }
                nodes.push(Node {
                    bucket: b,
                    parent: node_idx,
                });
            }
        }
        let Some((empty, mut node_idx)) = goal else {
            // No path within budget; nothing was moved, so the failed item
            // is the inserted one itself.
            return self.fail_or_stash(Entry { key, value }, expanded);
        };
        // Execute the path from the empty bucket backwards.
        let mut kickouts = 0u32;
        let mut dst = empty;
        loop {
            let src = nodes[node_idx].bucket;
            let moved = self.buckets[src].take().expect("path bucket occupied");
            log_move(
                log,
                FilterMove::Leave {
                    key: moved.key.clone(),
                    table: src / self.n,
                },
            );
            log_move(
                log,
                FilterMove::Enter {
                    key: moved.key.clone(),
                    table: dst / self.n,
                },
            );
            self.buckets[dst] = Some(moved);
            self.meter.offchip_write(1);
            kickouts += 1;
            dst = src;
            if nodes[node_idx].parent == usize::MAX {
                break;
            }
            node_idx = nodes[node_idx].parent;
        }
        log_move(
            log,
            FilterMove::Enter {
                key: key.clone(),
                table: dst / self.n,
            },
        );
        self.buckets[dst] = Some(Entry { key, value });
        self.meter.offchip_write(1);
        self.main_len += 1;
        Ok(InsertReport {
            outcome: InsertOutcome::Placed,
            kickouts,
            collision: true,
            copies_written: 1,
        })
    }

    fn fail_or_stash(
        &mut self,
        carried: Entry<K, V>,
        kickouts: u32,
    ) -> Result<InsertReport, CuckooFull<K, V>> {
        let report = InsertReport {
            outcome: InsertOutcome::Stashed,
            kickouts,
            collision: true,
            copies_written: 0,
        };
        if self.stash.len() < self.stash_capacity {
            self.stash.push((carried.key, carried.value));
            self.meter.stash_write(1);
            // The item is in the stash, not the main table; `len()`
            // includes it via stash_len.
            Ok(report)
        } else {
            Err(CuckooFull {
                evicted: (carried.key, carried.value),
                report: InsertReport {
                    outcome: InsertOutcome::Failed,
                    ..report
                },
            })
        }
    }

    /// Look up `key`, probing candidates in function order, then the
    /// stash (CHS checks its stash on every failed lookup).
    pub fn get(&self, key: &K) -> Option<&V> {
        let before = self.meter.snapshot();
        let found = self.get_unrecorded(key);
        let delta = self.meter.snapshot() - before;
        self.obs
            .record_lookup(found.is_some(), delta.offchip_reads + delta.stash_reads);
        found
    }

    fn get_unrecorded(&self, key: &K) -> Option<&V> {
        for i in 0..self.d {
            let b = self.slot_index(key, i);
            self.meter.offchip_read(1);
            if let Some(e) = &self.buckets[b] {
                if e.key == *key {
                    return Some(&e.value);
                }
            }
        }
        if !self.stash.is_empty() {
            self.meter.stash_read(1);
            return self.stash.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        }
        None
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let out = self.remove_unrecorded(key);
        self.obs.record_remove(out.is_some());
        out
    }

    fn remove_unrecorded(&mut self, key: &K) -> Option<V> {
        for i in 0..self.d {
            let b = self.slot_index(key, i);
            self.meter.offchip_read(1);
            if self.buckets[b].as_ref().is_some_and(|e| e.key == *key) {
                let e = self.buckets[b].take().unwrap();
                self.meter.offchip_write(1);
                self.main_len -= 1;
                return Some(e.value);
            }
        }
        if !self.stash.is_empty() {
            self.meter.stash_read(1);
            if let Some(pos) = self.stash.iter().position(|(k, _)| k == key) {
                self.meter.stash_write(1);
                return Some(self.stash.swap_remove(pos).1);
            }
        }
        None
    }

    /// Try to drain stashed items back into the main table ("items stored
    /// in it will take a try to the main table", §II.B). Returns how many
    /// were re-placed.
    pub fn retry_stash(&mut self) -> usize {
        let mut drained = 0;
        let mut i = 0;
        while i < self.stash.len() {
            let (k, _) = &self.stash[i];
            // Only retry when some candidate is free; avoids recursive
            // stash pushes.
            let has_room = (0..self.d).any(|f| {
                let b = self.slot_index(k, f);
                self.meter.offchip_read(1);
                self.buckets[b].is_none()
            });
            if has_room {
                self.meter.stash_read(1);
                let (k, v) = self.stash.swap_remove(i);
                // Unrecorded: re-offering a stashed item is not a new
                // user insert; the obs layer counted it when it spilled.
                let Ok(r) = self.insert_inner(k, v, &mut None) else {
                    unreachable!("a free candidate bucket was just observed")
                };
                debug_assert!(matches!(r.outcome, InsertOutcome::Placed));
                drained += 1;
            } else {
                i += 1;
            }
        }
        drained
    }

    /// Iterate stored `(key, value)` pairs (main table, then stash).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets
            .iter()
            .filter_map(|b| b.as_ref().map(|e| (&e.key, &e.value)))
            .chain(self.stash.iter().map(|(k, v)| (k, v)))
    }

    /// Remove every stored item (main table and stash). The hash
    /// functions, kick policy and access meter are untouched.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = None;
        }
        self.stash.clear();
        self.main_len = 0;
    }

    /// Undo a failed random-walk insertion from its move log: replay the
    /// kick trail backwards, re-seating every displaced entry in the
    /// bucket it was evicted from. `evicted` is the last victim (the item
    /// the failure handed back); walking the trail in reverse ends with
    /// the originally offered item "in hand", which is dropped — the
    /// failed insert becomes a strict no-op. A BFS failure executes no
    /// moves, so its empty log makes this a no-op too.
    pub(crate) fn unwind_failed_walk(&mut self, evicted: (K, V), log: &[FilterMove<K>]) {
        debug_assert!(log.len() % 2 == 0, "failed walks log whole kick pairs");
        let mut hand = Entry {
            key: evicted.0,
            value: evicted.1,
        };
        for pair in log.chunks_exact(2).rev() {
            let FilterMove::Enter { key, table } = &pair[0] else {
                unreachable!("kick pairs lead with Enter");
            };
            debug_assert!(
                matches!(&pair[1], FilterMove::Leave { key: victim, .. } if *victim == hand.key),
                "reverse trail must hand back each kick's victim"
            );
            // The kick placed `key` (then the carried item) into one of
            // its candidate buckets in sub-table `table`; that bucket is
            // recomputable from the key itself.
            let slot = self.slot_index(key, *table);
            hand = self.buckets[slot]
                .replace(hand)
                .expect("kick-trail buckets stay occupied");
            debug_assert!(hand.key == *key, "trail slot held the kicked item");
            self.meter.offchip_write(1);
        }
    }
}

/// [`McTable`] conformance. The trait's `insert` is a true upsert: a key
/// already resident in a candidate bucket (or the stash) has its value
/// rewritten **in place** — one off-chip write, no eviction risk, no
/// table churn. Fresh keys take the normal insertion path with one
/// strengthening over classic random-walk semantics: a **failed
/// insertion is a no-op**. The kick trail of a failed walk is unwound
/// backwards (each displaced entry is re-seated in the bucket it was
/// evicted from), so [`InsertOutcome::Failed`] means "not stored and
/// nothing else changed" — the same contract as the engine tables. The
/// inherent [`DaryCuckoo::insert`] keeps the classic evict-on-failure
/// semantics for callers that re-offer the victim.
impl<K: KeyHash + Eq + Clone, V: Clone> McTable<K, V> for DaryCuckoo<K, V> {
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        // In-place update: the key's candidate buckets first.
        for i in 0..self.d {
            let b = self.slot_index(&key, i);
            self.meter.offchip_read(1);
            if self.buckets[b].as_ref().is_some_and(|e| e.key == key) {
                self.buckets[b].as_mut().expect("probed occupied").value = value;
                self.meter.offchip_write(1);
                let report = InsertReport {
                    outcome: InsertOutcome::Updated,
                    kickouts: 0,
                    collision: false,
                    copies_written: 1,
                };
                self.obs.record_insert(&report);
                return report;
            }
        }
        // Then the stash: a stash-resident key is updated where it sits
        // instead of being re-offered to a (possibly full) main table.
        if !self.stash.is_empty() {
            self.meter.stash_read(1);
            if let Some(slot) = self.stash.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
                self.meter.stash_write(1);
                let report = InsertReport {
                    outcome: InsertOutcome::Updated,
                    kickouts: 0,
                    collision: false,
                    copies_written: 0,
                };
                self.obs.record_insert(&report);
                return report;
            }
        }
        McTable::insert_new(self, key, value)
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        match DaryCuckoo::insert_logged(self, key, value) {
            Ok((r, _)) => r,
            Err((full, log)) => {
                self.unwind_failed_walk(full.evicted, &log);
                full.report
            }
        }
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key).cloned()
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        DaryCuckoo::remove(self, key)
    }

    fn clear(&mut self) {
        DaryCuckoo::clear(self);
    }

    fn len(&self) -> usize {
        DaryCuckoo::len(self)
    }

    fn capacity(&self) -> usize {
        DaryCuckoo::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        DaryCuckoo::contains(self, key)
    }

    fn load(&self) -> f64 {
        self.load_ratio()
    }

    fn stash_len(&self) -> usize {
        DaryCuckoo::stash_len(self)
    }

    fn refresh_stash(&mut self) -> usize {
        self.retry_stash()
    }

    fn mem_stats(&self) -> mem_model::MemStats {
        self.meter().snapshot()
    }

    fn stats(&self) -> TableStats {
        DaryCuckoo::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn table(n: usize, seed: u64) -> DaryCuckoo<u64, u64> {
        DaryCuckoo::new(CuckooConfig::paper(n, seed))
    }

    #[test]
    fn insert_then_get() {
        let mut t = table(128, 1);
        for k in 0u64..100 {
            t.insert(k, k * 10).unwrap();
        }
        assert_eq!(t.len(), 100);
        for k in 0u64..100 {
            assert_eq!(t.get(&k), Some(&(k * 10)));
        }
        assert_eq!(t.get(&1000), None);
    }

    #[test]
    fn fills_to_high_load_with_random_walk() {
        // Ternary cuckoo sustains ~90% load; check 85% fills cleanly.
        let n = 10_000;
        let mut t = table(n, 2);
        let mut keys = UniqueKeys::new(3);
        let target = (3 * n) * 85 / 100;
        for _ in 0..target {
            let k = keys.next_key();
            t.insert(k, k).expect("85% load must not fail");
        }
        assert_eq!(t.len(), target);
        assert!(t.load_ratio() > 0.84);
    }

    #[test]
    fn fills_to_high_load_with_bfs() {
        let n = 5_000;
        let mut cfg = CuckooConfig::paper(n, 4);
        cfg.policy = KickPolicy::Bfs;
        let mut t: DaryCuckoo<u64, u64> = DaryCuckoo::new(cfg);
        let mut keys = UniqueKeys::new(5);
        let target = (3 * n) * 85 / 100;
        for _ in 0..target {
            let k = keys.next_key();
            t.insert(k, k).expect("85% load must not fail");
        }
        // All inserted keys must remain findable after relocations.
        for k in UniqueKeys::new(5).take_vec(target) {
            assert!(t.contains(&k));
        }
    }

    #[test]
    fn remove_works_and_frees_space() {
        let mut t = table(64, 6);
        for k in 0u64..50 {
            t.insert(k, k).unwrap();
        }
        for k in 0u64..50 {
            assert_eq!(t.remove(&k), Some(k));
            assert_eq!(t.remove(&k), None);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn kickouts_reported_and_items_survive_relocation() {
        let n = 1_000;
        let mut t = table(n, 7);
        let mut keys = UniqueKeys::new(8);
        let mut inserted = Vec::new();
        let mut any_kick = false;
        for _ in 0..(3 * n) * 88 / 100 {
            let k = keys.next_key();
            let r = t.insert(k, k).unwrap();
            any_kick |= r.kickouts > 0;
            inserted.push(k);
        }
        assert!(any_kick, "88% load must trigger kick-outs");
        for k in inserted {
            assert_eq!(t.get(&k), Some(&k));
        }
    }

    #[test]
    fn stash_catches_failures_and_serves_lookups() {
        // Tiny table, overfill until the stash is used.
        let mut t: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig {
            maxloop: 20,
            stash_capacity: 8,
            ..CuckooConfig::paper(8, 9)
        });
        let mut keys = UniqueKeys::new(10);
        let mut all = Vec::new();
        let mut stashed = 0;
        for _ in 0..24 {
            let k = keys.next_key();
            match t.insert(k, k) {
                Ok(r) => {
                    if r.outcome == InsertOutcome::Stashed {
                        stashed += 1;
                    }
                    all.push(k);
                }
                Err(full) => {
                    // Both the evicted item's key is gone; everything else
                    // must remain consistent. Stop here.
                    let (ek, _) = full.evicted;
                    all.retain(|&x| x != ek);
                    break;
                }
            }
        }
        assert!(stashed > 0 || t.stash_len() > 0, "expected stash use");
        for k in &all {
            assert!(t.contains(k), "key {k} lost");
        }
    }

    #[test]
    fn stash_full_reports_failure_with_evicted_item() {
        let mut t: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig {
            maxloop: 5,
            stash_capacity: 0,
            ..CuckooConfig::paper(2, 11)
        });
        let mut keys = UniqueKeys::new(12);
        let mut failures = 0;
        for _ in 0..50 {
            let k = keys.next_key();
            if let Err(full) = t.insert(k, k) {
                assert_eq!(full.report.outcome, InsertOutcome::Failed);
                failures += 1;
            }
        }
        assert!(failures > 0, "tiny table must overflow");
    }

    #[test]
    fn retry_stash_drains_after_removals() {
        let mut t: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig {
            maxloop: 30,
            stash_capacity: 16,
            ..CuckooConfig::paper(16, 13)
        });
        let mut keys = UniqueKeys::new(14);
        let inserted: Vec<u64> = (0..48)
            .map(|_| keys.next_key())
            .filter(|&k| t.insert(k, k).is_ok())
            .collect();
        if t.stash_len() == 0 {
            return; // seed happened to fit everything; nothing to test
        }
        // Free half the table, then drain.
        for k in inserted.iter().take(inserted.len() / 2) {
            t.remove(k);
        }
        let before = t.stash_len();
        let drained = t.retry_stash();
        assert_eq!(t.stash_len(), before - drained);
        assert!(drained > 0, "removals freed space; stash must drain");
    }

    #[test]
    fn meter_counts_lookup_probes() {
        let mut t = table(256, 15);
        for k in 0u64..10 {
            t.insert(k, k).unwrap();
        }
        let before = t.meter().snapshot();
        let _ = t.get(&99_999); // absent: must probe all d buckets
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_reads, 3);
        assert_eq!(delta.offchip_writes, 0);
    }

    #[test]
    fn insert_at_empty_table_costs_one_read_one_write() {
        let mut t = table(256, 16);
        let before = t.meter().snapshot();
        t.insert(1, 1).unwrap();
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_reads, 1); // first candidate empty
        assert_eq!(delta.offchip_writes, 1);
    }

    #[test]
    fn differential_against_hashmap() {
        let mut t = table(4_096, 17);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(18);
        let mut s = SplitMix64::new(19);
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..30_000 {
            match s.next_below(10) {
                0..=5 => {
                    let k = keys.next_key();
                    match t.insert(k, k + 1) {
                        Ok(_) => {
                            model.insert(k, k + 1);
                            live.push(k);
                        }
                        Err(full) => {
                            // Random-walk failure: k was placed, the
                            // evicted victim fell out.
                            model.insert(k, k + 1);
                            live.push(k);
                            let (ek, _) = full.evicted;
                            model.remove(&ek);
                            live.retain(|&x| x != ek);
                        }
                    }
                }
                6..=7 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    let k = live[i];
                    assert_eq!(t.get(&k), model.get(&k));
                }
                8 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    let k = live.swap_remove(i);
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    let k = keys.absent_key(s.next_below(1 << 20));
                    assert_eq!(t.get(&k), None);
                }
            }
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
    }

    #[test]
    fn iter_yields_all_items() {
        let mut t = table(128, 20);
        for k in 0u64..60 {
            t.insert(k, k * 2).unwrap();
        }
        let mut got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        assert_eq!(got, (0u64..60).collect::<Vec<_>>());
    }

    /// Sorted snapshot of everything stored (main table + stash).
    fn contents(t: &DaryCuckoo<u64, u64>) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn mctable_upsert_updates_in_place_with_one_write() {
        let mut t = table(256, 21);
        t.insert(5, 50).unwrap();
        let before = t.meter().snapshot();
        let r = McTable::insert(&mut t, 5, 51);
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(r.kickouts, 0);
        assert!(!r.collision);
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_writes, 1, "in-place update is one write");
        assert_eq!(t.get(&5), Some(&51));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mctable_failed_insert_is_a_noop() {
        // Tiny table, no stash, small budget: overload until an insert
        // fails, checking before/after snapshots around every op. A
        // failed McTable insert must leave the table bit-identical.
        let mut t: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig {
            maxloop: 8,
            ..CuckooConfig::paper(3, 22)
        });
        let mut keys = UniqueKeys::new(23);
        let mut failures = 0;
        for _ in 0..60 {
            let k = keys.next_key();
            let before = contents(&t);
            let r = McTable::insert(&mut t, k, k ^ 0xBEEF);
            if r.outcome == InsertOutcome::Failed {
                failures += 1;
                assert_eq!(contents(&t), before, "failed insert must change nothing");
                assert_eq!(t.get(&k), None, "failed key must not be stored");
            } else {
                assert_eq!(t.get(&k), Some(&(k ^ 0xBEEF)));
            }
        }
        assert!(failures > 0, "a 9-bucket table must overflow in 60 inserts");
    }

    #[test]
    fn mctable_upsert_of_stashed_key_leaves_table_untouched() {
        // Force a key into the stash, then upsert it: pre-fix this
        // re-offered the key to the full main table, kicking a walk that
        // swapped some other key into the stash. Post-fix the update
        // happens in the stash slot itself.
        let mut t: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig {
            maxloop: 12,
            stash_capacity: 8,
            ..CuckooConfig::paper(4, 24)
        });
        let mut keys = UniqueKeys::new(25);
        while t.stash_len() == 0 {
            let k = keys.next_key();
            t.insert(k, k)
                .expect("stash absorbs failures at capacity 8");
        }
        // Stash items come after the first `main_len` iter entries.
        let (stashed_key, _) = t.iter().nth(t.main_len()).map(|(k, v)| (*k, *v)).unwrap();
        let main_before: Vec<(u64, u64)> = {
            let mut v: Vec<(u64, u64)> =
                t.iter().take(t.main_len()).map(|(k, v)| (*k, *v)).collect();
            v.sort_unstable();
            v
        };
        let r = McTable::insert(&mut t, stashed_key, 9_999);
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(t.get(&stashed_key), Some(&9_999));
        let main_after: Vec<(u64, u64)> = {
            let mut v: Vec<(u64, u64)> =
                t.iter().take(t.main_len()).map(|(k, v)| (*k, *v)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            main_after, main_before,
            "stash-resident upsert must not disturb the main table"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn d1_panics() {
        let _ = DaryCuckoo::<u64, u64>::new(CuckooConfig {
            d: 1,
            ..CuckooConfig::paper(8, 0)
        });
    }

    use hash_kit::SplitMix64;
}
