//! Bloom-filter-guided cuckoo hashing — the on-chip-helper alternative
//! the paper positions itself against (§II.B: DEHT \[25\], EMOMA \[24\]).
//!
//! Those systems pair an off-chip single-copy cuckoo table with an
//! on-chip filter structure that tells the lookup *which* candidate to
//! read, aiming at one off-chip access per lookup. This module
//! implements the essential construction: one **counting Bloom filter
//! per sub-table** registering the keys currently resident in that
//! sub-table. A lookup queries the d filters on-chip and reads only the
//! sub-tables whose filter says "maybe" (false positives cost extra
//! reads; counting updates keep the filters exact under relocation and
//! deletion).
//!
//! The point of including it: the paper's second contribution claims the
//! 2-bit-per-bucket counter array beats "current solutions" in on-chip
//! memory for comparable off-chip savings. The `ablation_onchip`
//! benchmark measures exactly that trade — accesses per lookup as a
//! function of on-chip bits per item — against this baseline.

use hash_kit::{KeyHash, SplitMix64};
use mccuckoo_core::{McTable, TableStats};
use mem_model::MemMeter;

use crate::dary::{CuckooConfig, CuckooFull, DaryCuckoo};
use mem_model::{InsertOutcome, InsertReport};

/// A counting Bloom filter with 4-bit counters (the classic choice for
/// filters that must support deletion).
#[derive(Debug, Clone)]
pub struct CountingBloom {
    /// 4-bit counters, two per byte.
    cells: Vec<u8>,
    /// Number of counters (power of two).
    m: usize,
    /// Hash seeds, one per probe.
    seeds: Vec<u64>,
}

impl CountingBloom {
    /// A filter with at least `m_min` counters and `k` probes.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(m_min: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "at least one probe");
        let m = m_min.next_power_of_two().max(16);
        let mut s = SplitMix64::new(seed ^ 0xB100_F11E_0000_CAFE);
        Self {
            cells: vec![0u8; m / 2 + 1],
            m,
            seeds: (0..k).map(|_| s.next_u64()).collect(),
        }
    }

    /// On-chip bits this filter occupies.
    pub fn onchip_bits(&self) -> usize {
        self.m * 4
    }

    #[inline]
    fn idx<K: KeyHash + ?Sized>(&self, key: &K, probe: usize) -> usize {
        (key.hash_seeded(self.seeds[probe]) as usize) & (self.m - 1)
    }

    #[inline]
    fn get_cell(&self, i: usize) -> u8 {
        (self.cells[i / 2] >> ((i % 2) * 4)) & 0xF
    }

    fn bump(&mut self, i: usize, up: bool) {
        let shift = (i % 2) * 4;
        let cur = (self.cells[i / 2] >> shift) & 0xF;
        let new = if up {
            // Saturate: a saturated counter is never decremented, which
            // keeps the filter conservative (no false negatives).
            cur.saturating_add(1).min(15)
        } else if cur == 15 || cur == 0 {
            cur // saturated or already empty: leave untouched
        } else {
            cur - 1
        };
        self.cells[i / 2] = (self.cells[i / 2] & !(0xF << shift)) | (new << shift);
    }

    /// Register a key.
    pub fn add<K: KeyHash + ?Sized>(&mut self, key: &K) {
        for p in 0..self.seeds.len() {
            let i = self.idx(key, p);
            self.bump(i, true);
        }
    }

    /// Deregister a key previously added.
    pub fn remove<K: KeyHash + ?Sized>(&mut self, key: &K) {
        for p in 0..self.seeds.len() {
            let i = self.idx(key, p);
            self.bump(i, false);
        }
    }

    /// Membership query: false positives possible, false negatives not.
    pub fn maybe_contains<K: KeyHash + ?Sized>(&self, key: &K) -> bool {
        (0..self.seeds.len()).all(|p| self.get_cell(self.idx(key, p)) > 0)
    }

    /// Zero every counter, deregistering everything at once. Also the
    /// only way to recover saturated counters (which `remove` leaves
    /// untouched to stay conservative).
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }
}

/// Single-copy d-ary cuckoo table with one on-chip counting Bloom filter
/// per sub-table guiding lookups (DEHT/EMOMA-style baseline).
#[derive(Debug)]
pub struct BloomGuidedCuckoo<K, V> {
    table: DaryCuckoo<K, V>,
    filters: Vec<CountingBloom>,
}

impl<K: KeyHash + Eq + Clone, V> BloomGuidedCuckoo<K, V> {
    /// Build with `bits_per_key` on-chip filter bits per table slot and
    /// `k` probes per filter.
    pub fn new(config: CuckooConfig, bits_per_key: usize, k: usize) -> Self {
        let d = config.d;
        let n = config.buckets_per_table;
        let seed = config.seed;
        // bits_per_key is per *slot*; each sub-table filter gets its share.
        let counters_per_table = (n * bits_per_key / 4).max(16);
        let filters = (0..d)
            .map(|i| CountingBloom::new(counters_per_table, k, seed ^ (i as u64) << 17))
            .collect();
        Self {
            table: DaryCuckoo::new(config),
            filters,
        }
    }

    /// Total on-chip bits consumed by the filters.
    pub fn onchip_bits(&self) -> usize {
        self.filters.iter().map(|f| f.onchip_bits()).sum()
    }

    /// Stored items.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Total bucket count.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Access meter (shared with the inner table).
    pub fn meter(&self) -> &MemMeter {
        self.table.meter()
    }

    /// Insert a fresh key, maintaining the filters across every
    /// relocation the kick-out chain performs.
    pub fn insert(&mut self, key: K, value: V) -> Result<InsertReport, CuckooFull<K, V>> {
        // The inner table reports which sub-table each moved key left
        // and entered through its relocation log.
        let log = self.table.insert_logged(key, value);
        match log {
            Ok((report, moves)) => {
                for m in moves {
                    self.apply_move(m);
                }
                Ok(report)
            }
            Err((full, moves)) => {
                for m in moves {
                    self.apply_move(m);
                }
                Err(full)
            }
        }
    }

    fn apply_move(&mut self, mv: crate::dary::FilterMove<K>) {
        self.meter().onchip_write(1);
        match mv {
            crate::dary::FilterMove::Enter { key, table } => self.filters[table].add(&key),
            crate::dary::FilterMove::Leave { key, table } => self.filters[table].remove(&key),
        }
    }

    /// Look up: query the d filters on-chip, then read only the
    /// sub-tables that might hold the key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.meter().onchip_read(self.filters.len() as u64);
        let mut probes = 0u64;
        let mut found = None;
        for (i, f) in self.filters.iter().enumerate() {
            if f.maybe_contains(key) {
                probes += 1;
                if let Some(v) = self.table.get_in_table(key, i) {
                    found = Some(v);
                    break;
                }
                // False positive: the read was wasted, keep probing.
            }
        }
        // The probe histogram shows the filters' whole value: hits cost
        // ~1 read, misses mostly 0.
        self.table.obs().record_lookup(found.is_some(), probes);
        found
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, deregistering it from its filter.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.meter().onchip_read(self.filters.len() as u64);
        for i in 0..self.filters.len() {
            if self.filters[i].maybe_contains(key) {
                if let Some(v) = self.table.remove_in_table(key, i) {
                    self.meter().onchip_write(1);
                    self.filters[i].remove(key);
                    self.table.obs().record_remove(true);
                    return Some(v);
                }
            }
        }
        self.table.obs().record_remove(false);
        None
    }

    /// Remove every stored item and zero every filter. Hash functions,
    /// meter and stats counters are untouched.
    pub fn clear(&mut self) {
        self.table.clear();
        for f in &mut self.filters {
            f.clear();
        }
    }

    /// Observability snapshot (op counters, probe/kick histograms; the
    /// probe histogram counts *off-chip* reads only — filter queries are
    /// on-chip and free by the paper's cost model).
    pub fn stats(&self) -> TableStats {
        self.table.stats()
    }
}

/// [`McTable`] conformance with the same contract as the other
/// baselines: `insert` is a filter-guided in-place upsert, and a failed
/// fresh insert is a strict no-op — the inner table's kick trail is
/// unwound and **no filter updates are applied**, so the filters stay
/// exact. Assumes a stash-less inner config (the filters do not track
/// stash residency); [`CuckooConfig::paper`] is stash-less.
impl<K: KeyHash + Eq + Clone, V: Clone> McTable<K, V> for BloomGuidedCuckoo<K, V> {
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        self.meter().onchip_read(self.filters.len() as u64);
        let home = (0..self.filters.len()).find(|&i| {
            self.filters[i].maybe_contains(&key) && self.table.get_in_table(&key, i).is_some()
        });
        if let Some(i) = home {
            let updated = self.table.update_in_table(&key, i, value);
            debug_assert!(updated, "home sub-table was just probed");
            let report = InsertReport {
                outcome: InsertOutcome::Updated,
                kickouts: 0,
                collision: false,
                copies_written: 1,
            };
            self.table.obs().record_insert(&report);
            return report;
        }
        McTable::insert_new(self, key, value)
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        // insert_logged records the outcome in the shared obs recorder.
        match self.table.insert_logged(key, value) {
            Ok((report, moves)) => {
                for m in moves {
                    self.apply_move(m);
                }
                report
            }
            Err((full, log)) => {
                // Failure becomes a no-op: unwind the walk and discard
                // the move log so the filters never learn about it.
                self.table.unwind_failed_walk(full.evicted, &log);
                full.report
            }
        }
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key).cloned()
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        BloomGuidedCuckoo::remove(self, key)
    }

    fn clear(&mut self) {
        BloomGuidedCuckoo::clear(self);
    }

    fn len(&self) -> usize {
        BloomGuidedCuckoo::len(self)
    }

    fn capacity(&self) -> usize {
        BloomGuidedCuckoo::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        BloomGuidedCuckoo::contains(self, key)
    }

    fn mem_stats(&self) -> mem_model::MemStats {
        self.meter().snapshot()
    }

    fn stats(&self) -> TableStats {
        BloomGuidedCuckoo::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::UniqueKeys;

    #[test]
    fn counting_bloom_roundtrip_and_deletion() {
        let mut f = CountingBloom::new(1024, 3, 1);
        for k in 0u64..200 {
            f.add(&k);
        }
        for k in 0u64..200 {
            assert!(f.maybe_contains(&k), "no false negatives");
        }
        for k in 0u64..100 {
            f.remove(&k);
        }
        for k in 100u64..200 {
            assert!(f.maybe_contains(&k), "survivors must remain");
        }
        // Removed keys should mostly be gone (false positives allowed).
        let fp = (0u64..100).filter(|k| f.maybe_contains(k)).count();
        assert!(fp < 30, "{fp} false positives after removal");
    }

    #[test]
    fn counting_bloom_false_positive_rate_is_sane() {
        let mut f = CountingBloom::new(4096, 3, 2);
        for k in 0u64..400 {
            f.add(&k);
        }
        let fp = (10_000u64..30_000).filter(|k| f.maybe_contains(k)).count();
        let rate = fp as f64 / 20_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    fn guided(n: usize, seed: u64) -> BloomGuidedCuckoo<u64, u64> {
        BloomGuidedCuckoo::new(CuckooConfig::paper(n, seed), 8, 3)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = guided(512, 2);
        let mut keys = UniqueKeys::new(3);
        let ks = keys.take_vec(1_000);
        for &k in &ks {
            t.insert(k, k + 9).unwrap();
        }
        for &k in &ks {
            assert_eq!(t.get(&k), Some(&(k + 9)));
        }
        for &k in &ks {
            assert_eq!(t.remove(&k), Some(k + 9));
            assert_eq!(t.get(&k), None);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn filters_stay_exact_through_relocations() {
        // Fill to 85%: plenty of kick-outs; every key must stay findable
        // (a stale filter entry would cause a false negative).
        let n = 2_000;
        let mut t = guided(n, 4);
        let mut keys = UniqueKeys::new(5);
        let target = 3 * n * 85 / 100;
        let ks = keys.take_vec(target);
        for &k in &ks {
            t.insert(k, k).unwrap();
        }
        for &k in &ks {
            assert_eq!(t.get(&k), Some(&k), "relocated key lost by filters");
        }
    }

    #[test]
    fn guided_lookup_reads_less_than_plain_cuckoo() {
        let n = 2_000;
        let mut plain: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig::paper(n, 6));
        let mut guided_t = guided(n, 6);
        let mut keys = UniqueKeys::new(7);
        let ks = keys.take_vec(3 * n / 2); // 50% load
        for &k in &ks {
            plain.insert(k, k).unwrap();
            guided_t.insert(k, k).unwrap();
        }
        let b = plain.meter().snapshot();
        for &k in &ks {
            let _ = plain.get(&k);
        }
        let plain_reads = (plain.meter().snapshot() - b).offchip_reads;
        let b = guided_t.meter().snapshot();
        for &k in &ks {
            let _ = guided_t.get(&k);
        }
        let guided_reads = (guided_t.meter().snapshot() - b).offchip_reads;
        assert!(
            guided_reads < plain_reads,
            "filters must prune reads: {guided_reads} vs {plain_reads}"
        );
        // With 8 bits/key of filter, hits should be close to one read.
        let per = guided_reads as f64 / ks.len() as f64;
        assert!(per < 1.3, "guided reads per hit {per}");
    }

    #[test]
    fn mctable_clear_upsert_and_stats() {
        let mut t = guided(256, 10);
        for k in 0u64..300 {
            assert!(McTable::insert_new(&mut t, k, k).stored());
        }
        let r = McTable::insert(&mut t, 7, 70);
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(t.get(&7), Some(&70));
        assert_eq!(McTable::remove(&mut t, &7), Some(70));
        McTable::clear(&mut t);
        assert!(t.is_empty());
        for k in 0u64..300 {
            assert_eq!(t.get(&k), None, "cleared filter must not resurrect {k}");
        }
        assert!(McTable::insert_new(&mut t, 5, 55).stored());
        assert_eq!(t.get(&5), Some(&55));
        let s = McTable::stats(&t);
        assert_eq!(s.ops.inserts, 301);
        assert_eq!(s.ops.updates, 1);
        assert_eq!(s.ops.removes, 1);
        assert!(s.probe_hist.count > 300);
    }

    #[test]
    fn mctable_failed_insert_keeps_filters_exact() {
        // Overload a tiny table until trait-level inserts fail; every
        // failure must be a strict no-op, including in the filters (an
        // applied move log from an unwound walk would desync them).
        let mut t: BloomGuidedCuckoo<u64, u64> = BloomGuidedCuckoo::new(
            CuckooConfig {
                maxloop: 8,
                ..CuckooConfig::paper(3, 11)
            },
            16,
            3,
        );
        let mut keys = UniqueKeys::new(12);
        let mut stored = Vec::new();
        let mut failures = 0;
        for _ in 0..60 {
            let k = keys.next_key();
            let r = McTable::insert(&mut t, k, k);
            if r.outcome == InsertOutcome::Failed {
                failures += 1;
                assert_eq!(t.get(&k), None, "rejected key must not be stored");
            } else {
                stored.push(k);
            }
            for &s in &stored {
                assert_eq!(t.get(&s), Some(&s), "filters must stay exact");
            }
        }
        assert!(failures > 0, "a 9-bucket table must overflow in 60 inserts");
    }

    #[test]
    fn absent_keys_mostly_cost_zero_reads_with_enough_bits() {
        // Bloom screening quality is bits-per-key bound: at 8 bits/key a
        // 50%-loaded filter leaks ~0.45 reads per absent key; at 32
        // bits/key it drops an order of magnitude. (This cost curve is
        // exactly what the on-chip ablation compares against McCuckoo's
        // fixed 2 bits/bucket.)
        let n = 2_000;
        let mut lean = BloomGuidedCuckoo::new(CuckooConfig::paper(n, 8), 8, 3);
        let mut rich = BloomGuidedCuckoo::new(CuckooConfig::paper(n, 8), 32, 4);
        let mut keys = UniqueKeys::new(9);
        for &k in &keys.take_vec(3 * n / 2) {
            lean.insert(k, k).unwrap();
            rich.insert(k, k).unwrap();
        }
        let measure = |t: &BloomGuidedCuckoo<u64, u64>| {
            let b = t.meter().snapshot();
            for j in 0..5_000 {
                assert_eq!(t.get(&keys.absent_key(j)), None);
            }
            (t.meter().snapshot() - b).offchip_reads as f64 / 5_000.0
        };
        let lean_reads = measure(&lean);
        let rich_reads = measure(&rich);
        assert!(lean_reads < 1.0, "lean filter reads {lean_reads}");
        assert!(rich_reads < 0.1, "rich filter reads {rich_reads}");
        assert!(rich_reads < lean_reads / 3.0);
    }
}
