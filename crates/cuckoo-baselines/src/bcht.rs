//! Blocked Cuckoo Hash Table (BCHT) — Erlingsson, Manasse & McSherry's
//! "cool and practical alternative" (paper ref \[18\]): `d` hash functions,
//! `l` slots per bucket. This is the paper's "BCHT" baseline (3 hashes ×
//! 3 slots in the experiments).
//!
//! Set-associativity within a bucket absorbs most collisions, so BCHT
//! reaches far higher load than plain cuckoo before kick-outs start
//! (Table I: first collision at ~46% vs ~9%). One bucket (all `l` slots)
//! is fetched per off-chip access, per the paper's assumption from
//! ref \[33\].

use hash_kit::{BucketFamily, FamilyKind, KeyHash, SplitMix64};
use mccuckoo_core::obs::Obs;
use mccuckoo_core::{McTable, TableStats};
use mem_model::{InsertOutcome, InsertReport, MemMeter};

/// Configuration of a [`Bcht`].
#[derive(Debug, Clone)]
pub struct BchtConfig {
    /// Number of hash functions / sub-tables.
    pub d: usize,
    /// Slots per bucket.
    pub slots: usize,
    /// Buckets per sub-table; capacity is `d * buckets_per_table * slots`.
    pub buckets_per_table: usize,
    /// Kick-out budget.
    pub maxloop: u32,
    /// Hash family construction.
    pub family: FamilyKind,
    /// Master seed.
    pub seed: u64,
}

impl BchtConfig {
    /// The paper's setup: 3 hash functions, 3 slots, random-walk,
    /// maxloop 500.
    pub fn paper(buckets_per_table: usize, seed: u64) -> Self {
        Self {
            d: 3,
            slots: 3,
            buckets_per_table,
            maxloop: 500,
            family: FamilyKind::Independent,
            seed,
        }
    }
}

/// Insertion failure: budget exhausted; `evicted` fell out of the table.
#[derive(Debug)]
pub struct BchtFull<K, V> {
    /// The item that could not be placed.
    pub evicted: (K, V),
    /// Instrumentation of the failed insertion.
    pub report: InsertReport,
}

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
}

/// Blocked cuckoo hash table: `d` sub-tables of buckets holding `l` slots.
///
/// Like [`crate::DaryCuckoo`], keys are assumed distinct.
#[derive(Debug)]
pub struct Bcht<K, V> {
    family: BucketFamily,
    d: usize,
    slots: usize,
    n: usize,
    maxloop: u32,
    /// Flat storage: `(table * n + bucket) * slots + slot`.
    entries: Vec<Option<Entry<K, V>>>,
    len: usize,
    rng: SplitMix64,
    meter: MemMeter,
    obs: Obs,
}

impl<K: KeyHash + Eq, V> Bcht<K, V> {
    /// Build a table from `config`.
    ///
    /// # Panics
    /// Panics if `d < 2`, `slots == 0`, or `buckets_per_table == 0`.
    pub fn new(config: BchtConfig) -> Self {
        assert!(config.d >= 2, "cuckoo hashing needs at least 2 functions");
        assert!(config.slots >= 1, "buckets need at least one slot");
        assert!(config.buckets_per_table > 0, "table must be non-empty");
        let family = BucketFamily::new(
            config.family,
            config.d,
            config.buckets_per_table,
            config.seed,
        );
        let total = config.d * config.buckets_per_table * config.slots;
        let mut entries = Vec::with_capacity(total);
        entries.resize_with(total, || None);
        Self {
            family,
            d: config.d,
            slots: config.slots,
            n: config.buckets_per_table,
            maxloop: config.maxloop,
            entries,
            len: 0,
            rng: SplitMix64::new(config.seed ^ 0xB10C_4ED5_1077_ED01),
            meter: MemMeter::new(),
            obs: Obs::default(),
        }
    }

    /// Number of hash functions.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Slots per bucket.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Load ratio: items / total slots.
    pub fn load_ratio(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Access meter.
    pub fn meter(&self) -> &MemMeter {
        &self.meter
    }

    /// Observability snapshot (op counters, probe/kick histograms).
    pub fn stats(&self) -> TableStats {
        self.obs.snapshot()
    }

    /// Global bucket id of candidate `i` (not slot-resolved).
    #[inline]
    fn bucket_id(&self, key: &K, i: usize) -> usize {
        i * self.n + self.family.bucket(key, i)
    }

    #[inline]
    fn slot_range(&self, bucket_id: usize) -> std::ops::Range<usize> {
        bucket_id * self.slots..(bucket_id + 1) * self.slots
    }

    /// Find a free slot in `bucket_id`, if any.
    fn free_slot(&self, bucket_id: usize) -> Option<usize> {
        self.slot_range(bucket_id)
            .find(|&s| self.entries[s].is_none())
    }

    /// Insert a fresh key.
    pub fn insert(&mut self, key: K, value: V) -> Result<InsertReport, BchtFull<K, V>> {
        let out = self.insert_tracked(key, value, None);
        match &out {
            Ok(report) => self.obs.record_insert(report),
            Err(full) => self.obs.record_insert(&full.report),
        }
        out
    }

    /// The insertion body. When `trail` is supplied, every kick's victim
    /// slot is recorded in walk order so a failed walk can be unwound
    /// ([`Self::unwind_failed_walk`]).
    fn insert_tracked(
        &mut self,
        key: K,
        value: V,
        mut trail: Option<&mut Vec<usize>>,
    ) -> Result<InsertReport, BchtFull<K, V>> {
        // Probe candidate buckets in order: one read per bucket.
        let cands: Vec<usize> = (0..self.d).map(|i| self.bucket_id(&key, i)).collect();
        for &b in &cands {
            self.meter.offchip_read(1);
            if let Some(s) = self.free_slot(b) {
                self.entries[s] = Some(Entry { key, value });
                self.meter.offchip_write(1);
                self.len += 1;
                return Ok(InsertReport::clean(1));
            }
        }
        // All candidate buckets full: random-walk over slots.
        let mut kickouts = 0u32;
        let mut carried = Entry { key, value };
        let mut cands = cands;
        let mut prev_bucket = usize::MAX;
        loop {
            if kickouts >= self.maxloop {
                return Err(BchtFull {
                    evicted: (carried.key, carried.value),
                    report: InsertReport {
                        outcome: InsertOutcome::Failed,
                        kickouts,
                        collision: true,
                        copies_written: 0,
                    },
                });
            }
            let choices: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&b| b != prev_bucket)
                .collect();
            let victim_bucket = choices[self.rng.next_below(choices.len() as u64) as usize];
            let victim_slot =
                victim_bucket * self.slots + self.rng.next_below(self.slots as u64) as usize;
            if let Some(trail) = trail.as_mut() {
                trail.push(victim_slot);
            }
            let victim = self.entries[victim_slot]
                .replace(carried)
                .expect("victim slot occupied");
            self.meter.offchip_write(1);
            kickouts += 1;
            carried = victim;
            prev_bucket = victim_bucket;
            cands = (0..self.d)
                .map(|i| self.bucket_id(&carried.key, i))
                .collect();
            let mut free = None;
            for &b in &cands {
                if b == prev_bucket {
                    continue;
                }
                self.meter.offchip_read(1);
                if let Some(s) = self.free_slot(b) {
                    free = Some(s);
                    break;
                }
            }
            if let Some(s) = free {
                self.entries[s] = Some(carried);
                self.meter.offchip_write(1);
                self.len += 1;
                return Ok(InsertReport {
                    outcome: InsertOutcome::Placed,
                    kickouts,
                    collision: true,
                    copies_written: 1,
                });
            }
        }
    }

    /// Look up `key`: one read per candidate bucket until found.
    pub fn get(&self, key: &K) -> Option<&V> {
        for i in 0..self.d {
            let b = self.bucket_id(key, i);
            self.meter.offchip_read(1);
            for s in self.slot_range(b) {
                if let Some(e) = &self.entries[s] {
                    if e.key == *key {
                        self.obs.record_lookup(true, i as u64 + 1);
                        return Some(&e.value);
                    }
                }
            }
        }
        self.obs.record_lookup(false, self.d as u64);
        None
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        for i in 0..self.d {
            let b = self.bucket_id(key, i);
            self.meter.offchip_read(1);
            for s in self.slot_range(b) {
                if self.entries[s].as_ref().is_some_and(|e| e.key == *key) {
                    let e = self.entries[s].take().unwrap();
                    self.meter.offchip_write(1);
                    self.len -= 1;
                    self.obs.record_remove(true);
                    return Some(e.value);
                }
            }
        }
        self.obs.record_remove(false);
        None
    }

    /// Iterate stored `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|e| e.as_ref().map(|e| (&e.key, &e.value)))
    }

    /// Remove every stored item. The hash functions and access meter are
    /// untouched.
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
        self.len = 0;
    }

    /// Undo a failed random-walk insertion from its victim-slot trail:
    /// replay the kicks backwards, re-seating every displaced entry in
    /// the slot it was evicted from. `evicted` is the last victim; the
    /// reverse replay ends with the originally offered item "in hand",
    /// which is dropped — the failed insert becomes a strict no-op.
    fn unwind_failed_walk(&mut self, evicted: (K, V), trail: &[usize]) {
        let mut hand = Entry {
            key: evicted.0,
            value: evicted.1,
        };
        for &slot in trail.iter().rev() {
            hand = self.entries[slot]
                .replace(hand)
                .expect("kick-trail slots stay occupied");
            self.meter.offchip_write(1);
        }
    }
}

/// [`McTable`] conformance, with the same upsert strengthening as
/// [`crate::DaryCuckoo`]'s impl: a key found in a candidate bucket is
/// updated **in place** (one off-chip write, no eviction risk), and a
/// failed fresh insert is a strict no-op — the kick trail is unwound so
/// [`InsertOutcome::Failed`] means "not stored and nothing else
/// changed". The inherent [`Bcht::insert`] keeps the classic
/// evict-on-failure semantics.
impl<K: KeyHash + Eq, V: Clone> McTable<K, V> for Bcht<K, V> {
    fn insert(&mut self, key: K, value: V) -> InsertReport {
        for i in 0..self.d {
            let b = self.bucket_id(&key, i);
            self.meter.offchip_read(1);
            for s in self.slot_range(b) {
                if self.entries[s].as_ref().is_some_and(|e| e.key == key) {
                    self.entries[s].as_mut().expect("probed occupied").value = value;
                    self.meter.offchip_write(1);
                    let report = InsertReport {
                        outcome: InsertOutcome::Updated,
                        kickouts: 0,
                        collision: false,
                        copies_written: 1,
                    };
                    self.obs.record_insert(&report);
                    return report;
                }
            }
        }
        McTable::insert_new(self, key, value)
    }

    fn insert_new(&mut self, key: K, value: V) -> InsertReport {
        let mut trail = Vec::new();
        let out = Bcht::insert_tracked(self, key, value, Some(&mut trail));
        match out {
            Ok(r) => {
                self.obs.record_insert(&r);
                r
            }
            Err(full) => {
                self.obs.record_insert(&full.report);
                self.unwind_failed_walk(full.evicted, &trail);
                full.report
            }
        }
    }

    fn lookup(&self, key: &K) -> Option<V> {
        self.get(key).cloned()
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        Bcht::remove(self, key)
    }

    fn clear(&mut self) {
        Bcht::clear(self);
    }

    fn len(&self) -> usize {
        Bcht::len(self)
    }

    fn capacity(&self) -> usize {
        Bcht::capacity(self)
    }

    fn contains(&self, key: &K) -> bool {
        Bcht::contains(self, key)
    }

    fn load(&self) -> f64 {
        self.load_ratio()
    }

    fn mem_stats(&self) -> mem_model::MemStats {
        self.meter().snapshot()
    }

    fn stats(&self) -> TableStats {
        Bcht::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_kit::SplitMix64;
    use std::collections::HashMap;
    use workloads::UniqueKeys;

    fn table(n: usize, seed: u64) -> Bcht<u64, u64> {
        Bcht::new(BchtConfig::paper(n, seed))
    }

    #[test]
    fn insert_then_get() {
        let mut t = table(64, 1);
        for k in 0u64..200 {
            t.insert(k, k + 7).unwrap();
        }
        for k in 0u64..200 {
            assert_eq!(t.get(&k), Some(&(k + 7)));
        }
        assert_eq!(t.get(&9999), None);
    }

    #[test]
    fn reaches_95_percent_load() {
        // The paper runs BCHT to 95%+ (Fig. 9); verify it fills.
        let n = 2_000;
        let mut t = table(n, 2);
        let cap = 3 * n * 3;
        let target = cap * 95 / 100;
        let mut keys = UniqueKeys::new(3);
        for _ in 0..target {
            let k = keys.next_key();
            t.insert(k, k).expect("95% load must succeed for 3x3 BCHT");
        }
        assert!(t.load_ratio() > 0.94);
        for k in UniqueKeys::new(3).take_vec(target) {
            assert!(t.contains(&k));
        }
    }

    #[test]
    fn first_collision_much_later_than_plain_cuckoo() {
        // Table I's qualitative claim: BCHT sees its first real collision
        // at far higher load than ternary cuckoo.
        let n = 2_000;
        let mut t = table(n, 4);
        let mut keys = UniqueKeys::new(5);
        let cap = 3 * n * 3;
        let mut first_collision_load = None;
        for i in 0..cap {
            let k = keys.next_key();
            let r = t.insert(k, k).unwrap();
            if r.collision {
                first_collision_load = Some(i as f64 / cap as f64);
                break;
            }
        }
        let load = first_collision_load.expect("collision must happen eventually");
        assert!(
            load > 0.25,
            "BCHT first collision at {load}, expected > 0.25"
        );
    }

    #[test]
    fn remove_and_reinsert() {
        let mut t = table(32, 6);
        for k in 0u64..100 {
            t.insert(k, k).unwrap();
        }
        for k in (0u64..100).step_by(2) {
            assert_eq!(t.remove(&k), Some(k));
        }
        assert_eq!(t.len(), 50);
        for k in (0u64..100).step_by(2) {
            assert!(!t.contains(&k));
            t.insert(k, k * 3).unwrap();
        }
        for k in (0u64..100).step_by(2) {
            assert_eq!(t.get(&k), Some(&(k * 3)));
        }
    }

    #[test]
    fn lookup_miss_costs_d_reads() {
        let t = table(64, 7);
        let before = t.meter().snapshot();
        assert_eq!(t.get(&42), None);
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_reads, 3);
    }

    #[test]
    fn whole_bucket_is_one_access() {
        // Hit in the first candidate bucket costs exactly one read even
        // though the bucket has 3 slots.
        let mut t = table(64, 8);
        t.insert(5u64, 50).unwrap();
        let before = t.meter().snapshot();
        assert_eq!(t.get(&5), Some(&50));
        let delta = t.meter().snapshot() - before;
        assert_eq!(delta.offchip_reads, 1);
    }

    #[test]
    fn differential_against_hashmap() {
        let mut t = table(1_024, 9);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut keys = UniqueKeys::new(10);
        let mut s = SplitMix64::new(11);
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..40_000 {
            match s.next_below(10) {
                0..=5 => {
                    let k = keys.next_key();
                    match t.insert(k, k ^ 0xFF) {
                        Ok(_) => {
                            model.insert(k, k ^ 0xFF);
                            live.push(k);
                        }
                        Err(full) => {
                            model.insert(k, k ^ 0xFF);
                            live.push(k);
                            let (ek, _) = full.evicted;
                            model.remove(&ek);
                            live.retain(|&x| x != ek);
                        }
                    }
                }
                6..=7 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    assert_eq!(t.get(&live[i]), model.get(&live[i]));
                }
                8 if !live.is_empty() => {
                    let i = s.next_below(live.len() as u64) as usize;
                    let k = live.swap_remove(i);
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    let k = keys.absent_key(s.next_below(1 << 20));
                    assert_eq!(t.get(&k), None);
                }
            }
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
    }

    #[test]
    fn overflow_returns_evicted_item() {
        let mut t: Bcht<u64, u64> = Bcht::new(BchtConfig {
            maxloop: 10,
            ..BchtConfig::paper(2, 12)
        });
        let mut keys = UniqueKeys::new(13);
        let mut failed = false;
        for _ in 0..30 {
            let k = keys.next_key();
            if let Err(full) = t.insert(k, k) {
                assert_eq!(full.report.outcome, InsertOutcome::Failed);
                assert!(full.report.kickouts >= 10);
                failed = true;
                break;
            }
        }
        assert!(failed, "an 18-slot table cannot absorb 30 items");
    }

    #[test]
    fn iter_sees_everything() {
        let mut t = table(64, 14);
        for k in 0u64..120 {
            t.insert(k, k).unwrap();
        }
        let mut ks: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        ks.sort_unstable();
        assert_eq!(ks, (0u64..120).collect::<Vec<_>>());
    }

    /// Sorted snapshot of the stored pairs, for no-op equality checks.
    fn contents(t: &Bcht<u64, u64>) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn mctable_upsert_updates_in_place_with_one_write() {
        let mut t = table(64, 16);
        McTable::insert(&mut t, 42u64, 1);
        let before = t.meter().snapshot();
        let r = McTable::insert(&mut t, 42u64, 2);
        let delta = t.meter().snapshot() - before;
        assert_eq!(r.outcome, InsertOutcome::Updated);
        assert_eq!(r.kickouts, 0);
        assert_eq!(delta.offchip_writes, 1, "in-place upsert is a single write");
        assert_eq!(t.get(&42), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mctable_failed_insert_is_a_noop() {
        // A tiny table with a tight kick budget: some trait-level inserts
        // must fail, and each failure must leave the table bit-identical.
        let mut t: Bcht<u64, u64> = Bcht::new(BchtConfig {
            maxloop: 8,
            ..BchtConfig::paper(2, 17)
        });
        let mut keys = UniqueKeys::new(18);
        let mut failures = 0;
        for _ in 0..60 {
            let k = keys.next_key();
            let before = contents(&t);
            let len_before = t.len();
            let r = McTable::insert(&mut t, k, k ^ 0xAB);
            if r.outcome == InsertOutcome::Failed {
                failures += 1;
                assert_eq!(contents(&t), before, "failed insert must not mutate");
                assert_eq!(t.len(), len_before);
                assert!(!t.contains(&k), "rejected key must not be stored");
            } else {
                assert!(t.contains(&k));
            }
        }
        assert!(failures > 0, "an 18-slot table cannot absorb 60 items");
    }

    #[test]
    fn single_slot_bcht_equals_dary_shape() {
        // l=1 BCHT behaves like plain cuckoo (sanity of the slot logic).
        let mut t: Bcht<u64, u64> = Bcht::new(BchtConfig {
            slots: 1,
            ..BchtConfig::paper(512, 15)
        });
        for k in 0u64..900 {
            t.insert(k, k).unwrap();
        }
        for k in 0u64..900 {
            assert!(t.contains(&k));
        }
    }
}
