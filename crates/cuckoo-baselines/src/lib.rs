//! # cuckoo-baselines — the single-copy comparison schemes
//!
//! The McCuckoo paper (ICDE 2019) evaluates against two baselines it also
//! implemented itself (§IV): **standard d-ary Cuckoo hashing** (ternary in
//! the experiments) and the **blocked Cuckoo hash table (BCHT)** of
//! Erlingsson et al. (3 hash functions × 3 slots). This crate implements
//! both from scratch, plus the *Cuckoo-hashing-with-a-stash* (CHS) variant
//! of Kirsch–Mitzenmacher–Wieder that the paper discusses as the standard
//! failure-handling remedy (small on-chip stash, default size 4).
//!
//! All tables are instrumented with [`mem_model::MemMeter`] using the same
//! cost model as the McCuckoo implementation so the paper's access-count
//! figures (Figs. 9–14) compare like for like:
//!
//! * reading one bucket (all slots) = 1 off-chip read,
//! * writing one bucket = 1 off-chip write,
//! * CHS's small stash is on-chip: probing it is a `stash_read`, never an
//!   off-chip access.
//!
//! Collision resolution supports the two classic strategies the paper
//! describes (§II.B): blind **random-walk** eviction and **BFS** search
//! for a shortest relocation path.

pub mod bcht;
pub mod bloom_guided;
pub mod dary;
pub mod kick;

pub use bcht::{Bcht, BchtConfig};
pub use bloom_guided::{BloomGuidedCuckoo, CountingBloom};
pub use dary::{CuckooConfig, DaryCuckoo};
pub use kick::KickPolicy;
