//! Per-operation reports shared by every table implementation.
//!
//! The paper's evaluation tracks, per insertion: whether a *real* collision
//! occurred (all candidates unusable without relocation), how many
//! kick-outs were performed, and whether the item ended up in the table or
//! the stash. Every table in this workspace (McCuckoo and the baselines)
//! returns an [`InsertReport`] so the harness can drive them uniformly.

use jsonlite::{impl_json_enum, impl_json_struct};

/// Where an inserted item ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Placed in the main table.
    Placed,
    /// The key already existed; its value was updated in place (upsert
    /// APIs only — the paper's workloads use distinct keys).
    Updated,
    /// Collision resolution failed; the item went to the stash.
    Stashed,
    /// Collision resolution failed and no stash is configured — the
    /// insert failed (the caller would have to rehash).
    Failed,
}

/// Instrumentation of a single insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReport {
    /// Final placement of the item.
    pub outcome: InsertOutcome,
    /// Number of items relocated (kicked out) during this insertion.
    pub kickouts: u32,
    /// `true` if a real collision occurred: every candidate location was
    /// occupied (for McCuckoo: occupied by sole copies, counter 1
    /// everywhere) so at least one relocation was required or the item was
    /// stashed.
    pub collision: bool,
    /// Copies of the inserted item written to the main table (always ≤ d;
    /// exactly 0 or 1 for single-copy baselines; for McCuckoo this is the
    /// redundancy achieved at insert time).
    pub copies_written: u8,
}

impl_json_enum!(InsertOutcome {
    Placed,
    Updated,
    Stashed,
    Failed
});
impl_json_struct!(InsertReport {
    outcome,
    kickouts,
    collision,
    copies_written
});

impl InsertReport {
    /// A collision-free placement that wrote `copies` copies.
    pub fn clean(copies: u8) -> Self {
        Self {
            outcome: InsertOutcome::Placed,
            kickouts: 0,
            collision: false,
            copies_written: copies,
        }
    }

    /// Whether the item is findable in the structure (table or stash).
    pub fn stored(&self) -> bool {
        matches!(
            self.outcome,
            InsertOutcome::Placed | InsertOutcome::Updated | InsertOutcome::Stashed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_shape() {
        let r = InsertReport::clean(3);
        assert_eq!(r.outcome, InsertOutcome::Placed);
        assert_eq!(r.kickouts, 0);
        assert!(!r.collision);
        assert_eq!(r.copies_written, 3);
        assert!(r.stored());
    }

    #[test]
    fn failed_is_not_stored() {
        let r = InsertReport {
            outcome: InsertOutcome::Failed,
            kickouts: 500,
            collision: true,
            copies_written: 0,
        };
        assert!(!r.stored());
    }

    #[test]
    fn stashed_is_stored() {
        let r = InsertReport {
            outcome: InsertOutcome::Stashed,
            kickouts: 200,
            collision: true,
            copies_written: 0,
        };
        assert!(r.stored());
    }

    #[test]
    fn serde_roundtrip() {
        let r = InsertReport::clean(1);
        let s = jsonlite::to_string(&r);
        assert_eq!(jsonlite::from_str::<InsertReport>(&s).unwrap(), r);
    }
}
