//! # mem-model — memory-hierarchy accounting for the McCuckoo reproduction
//!
//! McCuckoo (ICDE 2019) is designed for platforms with a two-level memory
//! hierarchy: a small fast **on-chip** memory holding the counter array and
//! a large, slow, bandwidth-limited **off-chip** memory holding the hash
//! table itself. Every design decision in the paper is justified by how
//! many off-chip accesses it saves, and the entire evaluation (§IV) is
//! expressed in those units:
//!
//! * Figs. 9–14 and Tables I–III report *access counts* per operation,
//!   which this crate captures with [`MemMeter`] / [`MemStats`];
//! * Figs. 15–16 report *latency and throughput* measured on an Altera
//!   Stratix V FPGA with DDR3 SDRAM, which we substitute with the
//!   parameterised cycle model in [`latency`] (see `DESIGN.md` §3 for the
//!   substitution rationale).
//!
//! The meter uses `Cell` counters so that logically-read-only table
//! operations (`lookup`) can still be metered through `&self`.

pub mod latency;
pub mod meter;
pub mod report;

pub use latency::{LatencyBreakdown, PlatformModel};
pub use meter::{MemMeter, MemStats};
pub use report::{InsertOutcome, InsertReport};
