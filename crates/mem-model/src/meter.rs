//! Access metering: counts of on-chip and off-chip reads and writes.
//!
//! Tables own a [`MemMeter`] and tick it on every memory touch; harnesses
//! snapshot it around operations and difference the snapshots. Counter
//! categories follow the paper's cost model:
//!
//! * **off-chip reads/writes** — bucket accesses to the main table. One
//!   bucket (all its slots, plus its 1-bit stash flag) is one access,
//!   following the paper's assumption that "the whole bucket can be
//!   retrieved in one memory access" (ref \[33\]).
//! * **verify reads** — off-chip reads issued solely to disambiguate which
//!   candidate buckets hold a victim's copies (see `DESIGN.md` §4). These
//!   are *also* counted in `offchip_reads`; the separate counter lets the
//!   experiments report how rare they are.
//! * **on-chip reads/writes** — counter-array and flag-cache touches.
//!   Free in the paper's access figures but they cost cycles in the
//!   latency model (Figs. 15–16 discuss exactly this overhead).
//! * **stash reads/writes** — accesses to the (off-chip) stash structure,
//!   reported separately because Table II/III quantify stash traffic.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use jsonlite::impl_json_struct;

/// A snapshot of access counters. Obtained from [`MemMeter::snapshot`];
/// two snapshots subtract to give per-operation or per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Off-chip main-table bucket reads (includes `verify_reads`).
    pub offchip_reads: u64,
    /// Off-chip main-table bucket writes.
    pub offchip_writes: u64,
    /// Subset of `offchip_reads` used only for copy-set disambiguation.
    pub verify_reads: u64,
    /// On-chip counter/flag reads.
    pub onchip_reads: u64,
    /// On-chip counter/flag writes.
    pub onchip_writes: u64,
    /// Stash reads.
    pub stash_reads: u64,
    /// Stash writes.
    pub stash_writes: u64,
    /// Number of distinct operations that visited the stash at all
    /// (Tables II–III report the *fraction of queries* that reach the
    /// stash, which is an event count, not a probe count).
    pub stash_visits: u64,
}

impl_json_struct!(MemStats {
    offchip_reads,
    offchip_writes,
    verify_reads,
    onchip_reads,
    onchip_writes,
    stash_reads,
    stash_writes,
    stash_visits
});

impl MemStats {
    /// Total off-chip traffic (reads + writes), the paper's headline unit.
    pub fn offchip_total(&self) -> u64 {
        self.offchip_reads + self.offchip_writes
    }

    /// Total on-chip traffic.
    pub fn onchip_total(&self) -> u64 {
        self.onchip_reads + self.onchip_writes
    }

    /// Total stash traffic.
    pub fn stash_total(&self) -> u64 {
        self.stash_reads + self.stash_writes
    }
}

impl Sub for MemStats {
    type Output = MemStats;
    fn sub(self, rhs: MemStats) -> MemStats {
        MemStats {
            offchip_reads: self.offchip_reads - rhs.offchip_reads,
            offchip_writes: self.offchip_writes - rhs.offchip_writes,
            verify_reads: self.verify_reads - rhs.verify_reads,
            onchip_reads: self.onchip_reads - rhs.onchip_reads,
            onchip_writes: self.onchip_writes - rhs.onchip_writes,
            stash_reads: self.stash_reads - rhs.stash_reads,
            stash_writes: self.stash_writes - rhs.stash_writes,
            stash_visits: self.stash_visits - rhs.stash_visits,
        }
    }
}

impl Add for MemStats {
    type Output = MemStats;
    fn add(self, rhs: MemStats) -> MemStats {
        MemStats {
            offchip_reads: self.offchip_reads + rhs.offchip_reads,
            offchip_writes: self.offchip_writes + rhs.offchip_writes,
            verify_reads: self.verify_reads + rhs.verify_reads,
            onchip_reads: self.onchip_reads + rhs.onchip_reads,
            onchip_writes: self.onchip_writes + rhs.onchip_writes,
            stash_reads: self.stash_reads + rhs.stash_reads,
            stash_writes: self.stash_writes + rhs.stash_writes,
            stash_visits: self.stash_visits + rhs.stash_visits,
        }
    }
}

impl AddAssign for MemStats {
    fn add_assign(&mut self, rhs: MemStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "off-chip r/w {}/{} (verify {}), on-chip r/w {}/{}, stash r/w {}/{}",
            self.offchip_reads,
            self.offchip_writes,
            self.verify_reads,
            self.onchip_reads,
            self.onchip_writes,
            self.stash_reads,
            self.stash_writes
        )
    }
}

/// Interior-mutable access meter owned by a table instance.
///
/// ```
/// use mem_model::MemMeter;
///
/// let m = MemMeter::new();
/// let before = m.snapshot();
/// m.offchip_read(2);
/// m.offchip_write(1);
/// let delta = m.snapshot() - before;
/// assert_eq!(delta.offchip_reads, 2);
/// assert_eq!(delta.offchip_total(), 3);
/// ```
///
/// `Cell`-based so metering works through `&self` (lookups are `&self`).
/// Not thread-safe by design: the concurrent table wrappers keep their own
/// per-thread meters and merge them.
#[derive(Debug, Default)]
pub struct MemMeter {
    offchip_reads: Cell<u64>,
    offchip_writes: Cell<u64>,
    verify_reads: Cell<u64>,
    onchip_reads: Cell<u64>,
    onchip_writes: Cell<u64>,
    stash_reads: Cell<u64>,
    stash_writes: Cell<u64>,
    stash_visits: Cell<u64>,
}

impl MemMeter {
    /// Fresh meter with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn offchip_read(&self, n: u64) {
        self.offchip_reads.set(self.offchip_reads.get() + n);
    }

    #[inline]
    pub fn offchip_write(&self, n: u64) {
        self.offchip_writes.set(self.offchip_writes.get() + n);
    }

    /// A verification read: counted both as an off-chip read and in the
    /// dedicated `verify_reads` counter.
    #[inline]
    pub fn verify_read(&self, n: u64) {
        self.offchip_reads.set(self.offchip_reads.get() + n);
        self.verify_reads.set(self.verify_reads.get() + n);
    }

    #[inline]
    pub fn onchip_read(&self, n: u64) {
        self.onchip_reads.set(self.onchip_reads.get() + n);
    }

    #[inline]
    pub fn onchip_write(&self, n: u64) {
        self.onchip_writes.set(self.onchip_writes.get() + n);
    }

    #[inline]
    pub fn stash_read(&self, n: u64) {
        self.stash_reads.set(self.stash_reads.get() + n);
    }

    #[inline]
    pub fn stash_write(&self, n: u64) {
        self.stash_writes.set(self.stash_writes.get() + n);
    }

    /// Record that the current operation visited the stash (at most once
    /// per operation by convention).
    #[inline]
    pub fn stash_visit(&self) {
        self.stash_visits.set(self.stash_visits.get() + 1);
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> MemStats {
        MemStats {
            offchip_reads: self.offchip_reads.get(),
            offchip_writes: self.offchip_writes.get(),
            verify_reads: self.verify_reads.get(),
            onchip_reads: self.onchip_reads.get(),
            onchip_writes: self.onchip_writes.get(),
            stash_reads: self.stash_reads.get(),
            stash_writes: self.stash_writes.get(),
            stash_visits: self.stash_visits.get(),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.offchip_reads.set(0);
        self.offchip_writes.set(0);
        self.verify_reads.set(0);
        self.onchip_reads.set(0);
        self.onchip_writes.set(0);
        self.stash_reads.set(0);
        self.stash_writes.set(0);
        self.stash_visits.set(0);
    }

    /// Run `f` and return its result together with the access delta it
    /// caused.
    pub fn metered<T>(&self, f: impl FnOnce() -> T) -> (T, MemStats) {
        let before = self.snapshot();
        let out = f();
        (out, self.snapshot() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_ticks() {
        let m = MemMeter::new();
        m.offchip_read(2);
        m.offchip_write(1);
        m.onchip_read(5);
        m.onchip_write(3);
        m.stash_read(1);
        m.stash_write(4);
        let s = m.snapshot();
        assert_eq!(s.offchip_reads, 2);
        assert_eq!(s.offchip_writes, 1);
        assert_eq!(s.onchip_reads, 5);
        assert_eq!(s.onchip_writes, 3);
        assert_eq!(s.stash_reads, 1);
        assert_eq!(s.stash_writes, 4);
        assert_eq!(s.offchip_total(), 3);
        assert_eq!(s.onchip_total(), 8);
        assert_eq!(s.stash_total(), 5);
    }

    #[test]
    fn verify_read_counts_twice() {
        let m = MemMeter::new();
        m.verify_read(3);
        let s = m.snapshot();
        assert_eq!(s.offchip_reads, 3);
        assert_eq!(s.verify_reads, 3);
    }

    #[test]
    fn snapshot_delta_isolates_an_operation() {
        let m = MemMeter::new();
        m.offchip_read(10);
        let before = m.snapshot();
        m.offchip_read(1);
        m.offchip_write(2);
        let delta = m.snapshot() - before;
        assert_eq!(delta.offchip_reads, 1);
        assert_eq!(delta.offchip_writes, 2);
    }

    #[test]
    fn metered_closure_returns_delta() {
        let m = MemMeter::new();
        let (val, delta) = m.metered(|| {
            m.offchip_read(4);
            "done"
        });
        assert_eq!(val, "done");
        assert_eq!(delta.offchip_reads, 4);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = MemMeter::new();
        m.offchip_read(1);
        m.stash_write(1);
        m.verify_read(1);
        m.reset();
        assert_eq!(m.snapshot(), MemStats::default());
    }

    #[test]
    fn stats_add_and_sub_roundtrip() {
        let a = MemStats {
            offchip_reads: 5,
            offchip_writes: 4,
            verify_reads: 1,
            onchip_reads: 9,
            onchip_writes: 2,
            stash_reads: 1,
            stash_writes: 0,
            stash_visits: 1,
        };
        let b = MemStats {
            offchip_reads: 2,
            offchip_writes: 2,
            verify_reads: 0,
            onchip_reads: 4,
            onchip_writes: 1,
            stash_reads: 1,
            stash_writes: 0,
            stash_visits: 1,
        };
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn stats_serde_roundtrip() {
        let a = MemStats {
            offchip_reads: 7,
            ..Default::default()
        };
        let json = jsonlite::to_string(&a);
        let back: MemStats = jsonlite::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
