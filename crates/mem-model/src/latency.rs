//! Cycle-level latency/throughput model — the FPGA-platform substitute.
//!
//! The paper's Figs. 15–16 were measured on an Altera Stratix V GX with
//! on-chip SRAM and external DDR3 (§IV.A.1, §IV.F). We do not have that
//! board, so this module reproduces its *published timing parameters* as a
//! deterministic cost model applied to metered access traces:
//!
//! * logic + SRAM clocked at 333 MHz; hash/logic 1 CLK per operation,
//!   SRAM read 3 CLK, SRAM write 1 CLK;
//! * DDR3 controller at 200 MHz; read ≈ 18 CLK average, write 1 CLK
//!   ("the logic can return after handing the write to the controller",
//!   i.e. writes are posted);
//! * no pipelining or parallelism ("Due to the time limit, no parallelism
//!   or pipeline is implemented").
//!
//! Record size enters through the burst model: a DDR3 burst moves
//! `burst_bytes` (64 B at BL8 on a 64-bit channel); buckets larger than a
//! burst pay `extra_burst_clk` per additional burst. This keeps the
//! record-size sweeps of Figs. 15–16 meaningful.

use jsonlite::impl_json_struct;

use crate::meter::MemStats;

/// Timing parameters of the modelled platform.
///
/// ```
/// use mem_model::{MemStats, PlatformModel};
///
/// let p = PlatformModel::stratix_v();
/// let trace = MemStats { offchip_reads: 2, onchip_reads: 3, ..Default::default() };
/// let cost = p.cost(trace, 8, 1); // one operation, 8-byte records
/// assert!(cost.ns_per_op() > 180.0); // two 90 ns DDR reads dominate
/// assert!(cost.mops() < 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformModel {
    /// Logic / on-chip SRAM clock, MHz.
    pub logic_mhz: f64,
    /// Logic cycles charged per table operation (hash + rule evaluation).
    pub logic_op_clk: u64,
    /// SRAM read latency, logic clocks.
    pub sram_read_clk: u64,
    /// SRAM write latency, logic clocks.
    pub sram_write_clk: u64,
    /// DDR controller clock, MHz.
    pub ddr_mhz: f64,
    /// Average DDR read latency for the first burst, DDR clocks.
    pub ddr_read_clk: u64,
    /// DDR write hand-off cost (posted write), DDR clocks.
    pub ddr_write_clk: u64,
    /// Bytes moved per DDR burst.
    pub burst_bytes: u64,
    /// Additional DDR clocks per extra burst beyond the first.
    pub extra_burst_clk: u64,
    /// Stash access cost in DDR clocks per read (stash lives off-chip in
    /// McCuckoo; on-chip stashes set this to an SRAM-equivalent cost).
    pub stash_read_clk: u64,
    /// Stash write cost in DDR clocks.
    pub stash_write_clk: u64,
}

impl PlatformModel {
    /// The paper's Stratix V + DDR3 setup (§IV.A.1 / §IV.F).
    pub fn stratix_v() -> Self {
        Self {
            logic_mhz: 333.0,
            logic_op_clk: 1,
            sram_read_clk: 3,
            sram_write_clk: 1,
            ddr_mhz: 200.0,
            ddr_read_clk: 18,
            ddr_write_clk: 1,
            burst_bytes: 64,
            extra_burst_clk: 4,
            stash_read_clk: 18,
            stash_write_clk: 1,
        }
    }

    /// A software-ish model (cache hit vs DRAM miss) used by ablations:
    /// "on-chip" ≈ L1/L2, "off-chip" ≈ DRAM.
    pub fn commodity_server() -> Self {
        Self {
            logic_mhz: 3000.0,
            logic_op_clk: 10,
            sram_read_clk: 4,
            sram_write_clk: 4,
            ddr_mhz: 3000.0,
            ddr_read_clk: 300,
            ddr_write_clk: 100,
            burst_bytes: 64,
            extra_burst_clk: 60,
            stash_read_clk: 300,
            stash_write_clk: 100,
        }
    }

    /// Number of DDR bursts needed for a record of `record_bytes`.
    pub fn bursts(&self, record_bytes: u64) -> u64 {
        record_bytes.max(1).div_ceil(self.burst_bytes)
    }

    /// Nanoseconds for one off-chip read of a `record_bytes` bucket.
    pub fn offchip_read_ns(&self, record_bytes: u64) -> f64 {
        let clk = self.ddr_read_clk + (self.bursts(record_bytes) - 1) * self.extra_burst_clk;
        clk as f64 * 1_000.0 / self.ddr_mhz
    }

    /// Nanoseconds for one off-chip (posted) write of a `record_bytes`
    /// bucket.
    pub fn offchip_write_ns(&self, record_bytes: u64) -> f64 {
        let clk = self.ddr_write_clk + (self.bursts(record_bytes) - 1) * self.extra_burst_clk;
        clk as f64 * 1_000.0 / self.ddr_mhz
    }

    /// Nanoseconds for one on-chip read.
    pub fn onchip_read_ns(&self) -> f64 {
        self.sram_read_clk as f64 * 1_000.0 / self.logic_mhz
    }

    /// Nanoseconds for one on-chip write.
    pub fn onchip_write_ns(&self) -> f64 {
        self.sram_write_clk as f64 * 1_000.0 / self.logic_mhz
    }

    /// Cost an access trace for buckets of `record_bytes`, returning the
    /// per-component and total latency.
    ///
    /// `ops` is the number of table operations in the trace; each is
    /// charged `logic_op_clk` logic cycles.
    pub fn cost(&self, stats: MemStats, record_bytes: u64, ops: u64) -> LatencyBreakdown {
        let offchip_ns = stats.offchip_reads as f64 * self.offchip_read_ns(record_bytes)
            + stats.offchip_writes as f64 * self.offchip_write_ns(record_bytes);
        let onchip_ns = stats.onchip_reads as f64 * self.onchip_read_ns()
            + stats.onchip_writes as f64 * self.onchip_write_ns();
        let stash_ns = (stats.stash_reads * self.stash_read_clk
            + stats.stash_writes * self.stash_write_clk) as f64
            * 1_000.0
            / self.ddr_mhz;
        let logic_ns = (ops * self.logic_op_clk) as f64 * 1_000.0 / self.logic_mhz;
        LatencyBreakdown {
            offchip_ns,
            onchip_ns,
            stash_ns,
            logic_ns,
            ops,
        }
    }
}

impl PlatformModel {
    /// Pipelined variant of [`PlatformModel::cost`]: up to `outstanding`
    /// off-chip reads may be in flight at once, so their latency
    /// amortises while the per-burst transfer time still serialises on
    /// the data bus. The paper's board ran unpipelined ("Due to the time
    /// limit, no parallelism or pipeline is implemented"); this models
    /// the memory-level parallelism a production implementation would
    /// add, and is exercised by the `ablation_pipeline` benchmark.
    ///
    /// # Panics
    /// Panics if `outstanding == 0`.
    pub fn cost_pipelined(
        &self,
        stats: MemStats,
        record_bytes: u64,
        ops: u64,
        outstanding: u64,
    ) -> LatencyBreakdown {
        assert!(outstanding >= 1, "need at least one outstanding request");
        let bursts = self.bursts(record_bytes);
        // Each read still occupies the bus for its bursts; the idle CAS
        // latency overlaps across `outstanding` requests.
        let transfer_clk = bursts * self.extra_burst_clk.max(1);
        let read_clk_effective =
            (self.ddr_read_clk as f64 / outstanding as f64) + transfer_clk as f64;
        let write_clk = self.ddr_write_clk + (bursts - 1) * self.extra_burst_clk;
        let offchip_ns = (stats.offchip_reads as f64 * read_clk_effective
            + stats.offchip_writes as f64 * write_clk as f64)
            * 1_000.0
            / self.ddr_mhz;
        let onchip_ns = stats.onchip_reads as f64 * self.onchip_read_ns()
            + stats.onchip_writes as f64 * self.onchip_write_ns();
        let stash_ns = (stats.stash_reads * self.stash_read_clk
            + stats.stash_writes * self.stash_write_clk) as f64
            * 1_000.0
            / self.ddr_mhz
            / outstanding as f64;
        let logic_ns = (ops * self.logic_op_clk) as f64 * 1_000.0 / self.logic_mhz;
        LatencyBreakdown {
            offchip_ns,
            onchip_ns,
            stash_ns,
            logic_ns,
            ops,
        }
    }
}

impl_json_struct!(PlatformModel {
    logic_mhz,
    logic_op_clk,
    sram_read_clk,
    sram_write_clk,
    ddr_mhz,
    ddr_read_clk,
    ddr_write_clk,
    burst_bytes,
    extra_burst_clk,
    stash_read_clk,
    stash_write_clk,
});

impl Default for PlatformModel {
    fn default() -> Self {
        Self::stratix_v()
    }
}

/// Latency decomposition of an access trace under a [`PlatformModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Time spent on off-chip table accesses, ns.
    pub offchip_ns: f64,
    /// Time spent on on-chip counter/flag accesses, ns.
    pub onchip_ns: f64,
    /// Time spent on stash accesses, ns.
    pub stash_ns: f64,
    /// Logic/hash time, ns.
    pub logic_ns: f64,
    /// Operations in the trace.
    pub ops: u64,
}

impl LatencyBreakdown {
    /// Total latency of the trace, ns.
    pub fn total_ns(&self) -> f64 {
        self.offchip_ns + self.onchip_ns + self.stash_ns + self.logic_ns
    }

    /// Mean latency per operation, ns.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total_ns() / self.ops as f64
        }
    }

    /// Throughput in million operations per second (the unit of
    /// Figs. 15–16), assuming the unpipelined sequential execution the
    /// paper used.
    pub fn mops(&self) -> f64 {
        let ns = self.ns_per_op();
        if ns == 0.0 {
            0.0
        } else {
            1_000.0 / ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, writes: u64, on_r: u64, on_w: u64) -> MemStats {
        MemStats {
            offchip_reads: reads,
            offchip_writes: writes,
            onchip_reads: on_r,
            onchip_writes: on_w,
            ..Default::default()
        }
    }

    #[test]
    fn burst_counting() {
        let p = PlatformModel::stratix_v();
        assert_eq!(p.bursts(1), 1);
        assert_eq!(p.bursts(8), 1);
        assert_eq!(p.bursts(64), 1);
        assert_eq!(p.bursts(65), 2);
        assert_eq!(p.bursts(128), 2);
        assert_eq!(p.bursts(129), 3);
    }

    #[test]
    fn read_latency_matches_paper_numbers() {
        // 18 CLK at 200 MHz = 90 ns for a small record.
        let p = PlatformModel::stratix_v();
        assert!((p.offchip_read_ns(8) - 90.0).abs() < 1e-9);
        // SRAM read: 3 CLK at 333 MHz ≈ 9.01 ns.
        assert!((p.onchip_read_ns() - 9.009).abs() < 0.01);
    }

    #[test]
    fn larger_records_cost_more() {
        let p = PlatformModel::stratix_v();
        assert!(p.offchip_read_ns(128) > p.offchip_read_ns(8));
        assert!(p.offchip_write_ns(128) > p.offchip_write_ns(8));
    }

    #[test]
    fn reads_dominate_writes() {
        // Posted writes are far cheaper than reads on this platform.
        let p = PlatformModel::stratix_v();
        assert!(p.offchip_read_ns(8) > 10.0 * p.offchip_write_ns(8));
    }

    #[test]
    fn cost_decomposes_and_totals() {
        let p = PlatformModel::stratix_v();
        let b = p.cost(stats(2, 1, 3, 0), 8, 1);
        let expect_off = 2.0 * p.offchip_read_ns(8) + p.offchip_write_ns(8);
        let expect_on = 3.0 * p.onchip_read_ns();
        assert!((b.offchip_ns - expect_off).abs() < 1e-9);
        assert!((b.onchip_ns - expect_on).abs() < 1e-9);
        assert!(b.total_ns() > b.offchip_ns);
        assert_eq!(b.ops, 1);
        assert!(b.ns_per_op() > 0.0);
        assert!(b.mops() > 0.0);
    }

    #[test]
    fn zero_ops_is_safe() {
        let p = PlatformModel::stratix_v();
        let b = p.cost(MemStats::default(), 8, 0);
        assert_eq!(b.ns_per_op(), 0.0);
        assert_eq!(b.mops(), 0.0);
    }

    #[test]
    fn throughput_decreases_with_record_size() {
        let p = PlatformModel::stratix_v();
        let trace = stats(3, 0, 9, 0);
        let small = p.cost(trace, 8, 1).mops();
        let large = p.cost(trace, 128, 1).mops();
        assert!(small > large);
    }

    #[test]
    fn pipelining_reduces_read_bound_latency() {
        let p = PlatformModel::stratix_v();
        let trace = stats(10, 2, 30, 6);
        let serial = p.cost(trace, 8, 10).total_ns();
        let p1 = p.cost_pipelined(trace, 8, 10, 1).total_ns();
        let p4 = p.cost_pipelined(trace, 8, 10, 4).total_ns();
        let p16 = p.cost_pipelined(trace, 8, 10, 16).total_ns();
        assert!(p4 < p1, "4-deep must beat 1-deep");
        assert!(p16 < p4, "16-deep must beat 4-deep");
        // The pipelined model separates CAS latency from bus occupancy,
        // so depth-1 sits a little above the serial model (which folds
        // the first burst's transfer into its average read figure).
        assert!(
            p1 <= serial * 1.5 && p1 >= serial * 0.8,
            "depth-1 near serial"
        );
        // Diminishing returns: the bus transfer floor remains.
        let floor = trace.offchip_reads as f64
            * p.bursts(8) as f64
            * p.extra_burst_clk.max(1) as f64
            * 1_000.0
            / p.ddr_mhz;
        assert!(p16 >= floor, "transfer time cannot be pipelined away");
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn zero_depth_pipeline_rejected() {
        let p = PlatformModel::stratix_v();
        let _ = p.cost_pipelined(MemStats::default(), 8, 1, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = PlatformModel::stratix_v();
        let json = jsonlite::to_string(&p);
        let back: PlatformModel = jsonlite::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
