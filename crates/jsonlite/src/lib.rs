//! # jsonlite — dependency-free JSON for the McCuckoo workspace
//!
//! The workspace serialises three kinds of values: table snapshots
//! (`mccuckoo-core`'s persist module), configurations (`McConfig` and
//! the hash-family/deletion-mode enums) and per-operation reports
//! (`mem-model`). All of them are plain structs with named fields and
//! unit-variant enums, so a full serde stack is unnecessary — this crate
//! provides a [`Json`] value type, a strict parser, a writer, and two
//! conversion traits ([`ToJson`] / [`FromJson`]) together with
//! declarative macros ([`impl_json_struct!`] / [`impl_json_enum!`]) that
//! derive the impls.
//!
//! Design notes:
//!
//! * Integers are kept exact: `Json` distinguishes `U64`, `I64` and
//!   `F64`, so 64-bit hash seeds round-trip bit-for-bit (an `f64`-only
//!   model would silently corrupt seeds above 2^53).
//! * Object fields keep insertion order (`Vec<(String, Json)>`), which
//!   makes output deterministic — important for golden files and for the
//!   testkit's replayable failure reports.
//! * The parser is strict UTF-8 JSON with the usual escape set; unknown
//!   object fields are ignored on decode so snapshot formats can grow.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (the common case for counters and seeds).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, field order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a field of an object by name.
    pub fn get(&self, field: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == field).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Decoding error: expectation + the offending fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jsonlite: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

// ---------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Types that can be rebuilt from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

/// Encode any [`ToJson`] value to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&v.to_json(), &mut out);
    out
}

/// Decode a [`FromJson`] value from a JSON string.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    let j = parse(s)?;
    T::from_json(&j)
}

/// Parse a string into a [`Json`] value (rejecting trailing garbage).
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // `5f64.to_string()` prints "5"; keep it a float token so
                // decode returns F64 again.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; null is the conventional stand-in.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError("non-ascii \\u escape".into()))?;
                        let mut cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError("bad \\u escape".into()))?;
                        *pos += 4;
                        // Surrogate pair?
                        if (0xD800..0xDC00).contains(&cp)
                            && b.get(*pos + 1) == Some(&b'\\')
                            && b.get(*pos + 2) == Some(&b'u')
                        {
                            if let Some(hex2) = b.get(*pos + 3..*pos + 7) {
                                if let Ok(low) =
                                    u32::from_str_radix(std::str::from_utf8(hex2).unwrap_or(""), 16)
                                {
                                    if (0xDC00..0xE000).contains(&low) {
                                        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                        *pos += 6;
                                    }
                                }
                            }
                        }
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    _ => return err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise by finding the char boundary).
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..end]).map_err(|_| {
                        JsonError(format!("invalid utf-8 in string at byte {start}"))
                    })?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if float {
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError(format!("bad number '{text}'")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Json::I64)
            .map_err(|_| JsonError(format!("bad integer '{text}'")))
    } else {
        text.parse::<u64>()
            .map(Json::U64)
            .map_err(|_| JsonError(format!("bad integer '{text}'")))
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                match j {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError(format!("{n} out of range for {}", stringify!($t)))),
                    other => err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )+};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_sint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                match j {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError(format!("{n} out of range for {}", stringify!($t)))),
                    other => err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )+};
}
impl_json_sint!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::F64(x) => Ok(*x),
            Json::U64(n) => Ok(*n as f64),
            Json::I64(n) => Ok(*n as f64),
            other => err(format!("expected number, got {other:?}")),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        f64::from_json(j).map(|x| x as f32)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Str(s) => Ok(s.clone()),
            other => err(format!("expected string, got {other:?}")),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => err(format!("expected 2-element array, got {other:?}")),
        }
    }
}

impl<K: ToJson, V: ToJson> ToJson for HashMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|(k, v)| (k, v).to_json()).collect())
    }
}

impl<K: ToJson, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|(k, v)| (k, v).to_json()).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

// ---------------------------------------------------------------------
// Derive macros
// ---------------------------------------------------------------------

/// Implement [`ToJson`] + [`FromJson`] for a struct with named fields.
///
/// ```
/// # use jsonlite::impl_json_struct;
/// #[derive(Debug, PartialEq)]
/// struct P { x: u32, y: String }
/// impl_json_struct!(P { x, y });
/// let p = P { x: 3, y: "hi".into() };
/// let s = jsonlite::to_string(&p);
/// assert_eq!(jsonlite::from_str::<P>(&s).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_owned(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(j: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok($ty {
                    $($field: $crate::FromJson::from_json(j.get(stringify!($field)).ok_or_else(
                        || $crate::JsonError(format!(
                            "missing field '{}' on {}", stringify!($field), stringify!($ty)
                        )),
                    )?)?,)+
                })
            }
        }
    };
}

/// Implement [`ToJson`] + [`FromJson`] for an enum of unit variants,
/// encoded as the variant-name string (serde's default representation).
///
/// ```
/// # use jsonlite::impl_json_enum;
/// #[derive(Debug, PartialEq)]
/// enum Mode { A, B }
/// impl_json_enum!(Mode { A, B });
/// assert_eq!(jsonlite::to_string(&Mode::B), "\"B\"");
/// assert_eq!(jsonlite::from_str::<Mode>("\"A\"").unwrap(), Mode::A);
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Str(
                    match self { $($ty::$variant => stringify!($variant),)+ }.to_owned(),
                )
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(j: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match j {
                    $($crate::Json::Str(s) if s == stringify!($variant) => Ok($ty::$variant),)+
                    other => Err($crate::JsonError(format!(
                        "invalid {} variant: {other:?}", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn u64_seeds_are_exact() {
        // Above 2^53: an f64-backed model would corrupt this.
        let seed = u64::MAX - 3;
        let s = to_string(&seed);
        assert_eq!(from_str::<u64>(&s).unwrap(), seed);
    }

    #[test]
    fn float_tokens_stay_floats() {
        let s = to_string(&5.0f64);
        assert_eq!(s, "5.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 5.0);
    }

    #[test]
    fn vec_and_pairs() {
        let v: Vec<(u64, String)> = vec![(1, "one".into()), (2, "two".into())];
        let s = to_string(&v);
        assert_eq!(from_str::<Vec<(u64, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn struct_and_enum_macros() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            n: usize,
            label: String,
            flag: bool,
        }
        impl_json_struct!(Demo { n, label, flag });
        #[derive(Debug, PartialEq)]
        enum Kind {
            Alpha,
            Beta,
        }
        impl_json_enum!(Kind { Alpha, Beta });

        let d = Demo {
            n: 9,
            label: "x\"y".into(),
            flag: false,
        };
        let s = to_string(&d);
        assert_eq!(from_str::<Demo>(&s).unwrap(), d);
        assert_eq!(from_str::<Kind>("\"Beta\"").unwrap(), Kind::Beta);
        assert!(from_str::<Kind>("\"Gamma\"").is_err());
    }

    #[test]
    fn unknown_fields_ignored_missing_fields_error() {
        #[derive(Debug, PartialEq)]
        struct One {
            a: u32,
        }
        impl_json_struct!(One { a });
        assert_eq!(
            from_str::<One>("{\"a\":1,\"zzz\":true}").unwrap(),
            One { a: 1 }
        );
        assert!(from_str::<One>("{}").is_err());
    }

    #[test]
    fn strict_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        let s = to_string(&"π😀".to_string());
        assert_eq!(from_str::<String>(&s).unwrap(), "π😀");
    }
}
