//! Read-heavy in-memory KV index with concurrent readers — the MemC3
//! scenario the paper's §III.H addresses.
//!
//! One writer thread churns keys (forcing relocations) while several
//! reader threads serve a read-heavy workload. The §III.H guarantee —
//! items never become unavailable during relocations — is asserted live
//! on every read of the stable working set.
//!
//! ```sh
//! cargo run --release --example kv_cache
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mccuckoo_suite::mccuckoo_core::McConfig;
use mccuckoo_suite::{ConcurrentMcCuckoo, UniqueKeys};

fn main() {
    const TABLE_N: usize = 1 << 17; // 3 × 131072 buckets
    const STABLE: usize = 250_000;
    const READERS: usize = 4;
    const RUN_MILLIS: u64 = 1_500;

    let table: Arc<ConcurrentMcCuckoo<u64, u64>> =
        Arc::new(ConcurrentMcCuckoo::new(McConfig::paper(TABLE_N, 11)));

    // Warm the cache with the stable working set.
    let mut keys = UniqueKeys::new(12);
    let stable: Arc<Vec<u64>> = Arc::new(keys.take_vec(STABLE));
    for &k in stable.iter() {
        table.insert(k, k ^ 0xDEAD_BEEF).expect("warmup insert");
    }
    println!(
        "warmed {} keys into a {}-bucket concurrent table ({:.1}% load)",
        table.len(),
        table.capacity(),
        table.len() as f64 / table.capacity() as f64 * 100.0
    );

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        // Readers: hammer the stable set; every key must always be there.
        for r in 0..READERS {
            let table = table.clone();
            let stable = stable.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            scope.spawn(move || {
                let mut i = r;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = stable[i % stable.len()];
                    let got = table.get(&k);
                    assert_eq!(
                        got,
                        Some(k ^ 0xDEAD_BEEF),
                        "stable key unavailable during writer churn"
                    );
                    local += 1;
                    i += 7; // stride to avoid lockstep
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        // Writer: churn short-lived keys through the same table,
        // triggering multi-copy placements, overwrites and walks.
        let table_w = table.clone();
        let stop_w = stop.clone();
        scope.spawn(move || {
            let mut churn = UniqueKeys::new(13);
            let mut window: Vec<u64> = Vec::new();
            let mut writes = 0u64;
            while !stop_w.load(Ordering::Relaxed) {
                let k = churn.next_key();
                if table_w.insert(k, k).is_ok() {
                    window.push(k);
                    writes += 1;
                }
                if window.len() > 50_000 {
                    let victim = window.swap_remove(0);
                    table_w.remove(&victim);
                }
            }
            println!("writer committed {writes} inserts during the run");
        });
        std::thread::sleep(std::time::Duration::from_millis(RUN_MILLIS));
        stop.store(true, Ordering::Relaxed);
    });
    let secs = start.elapsed().as_secs_f64();
    let total = reads.load(Ordering::Relaxed);
    println!(
        "{READERS} readers performed {total} validated reads in {secs:.2}s \
         ({:.2} Mops aggregate) with zero availability violations",
        total as f64 / secs / 1e6
    );
}
