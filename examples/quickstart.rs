//! Quickstart: a guided tour of the McCuckoo API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mccuckoo_suite::cuckoo_baselines::{CuckooConfig, DaryCuckoo};
use mccuckoo_suite::mccuckoo_core::{
    BlockedConfig, BlockedMcCuckoo, DeletionMode, McConfig, McCuckoo, McTable,
};

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's table: 3 hash functions, single slot per bucket.
    // ------------------------------------------------------------------
    let mut table: McCuckoo<&str, u32> = McCuckoo::new(McConfig::paper(1024, 42));
    table.insert("alice", 1).unwrap();
    table.insert("bob", 2).unwrap();
    println!("alice -> {:?}", table.get(&"alice"));
    println!("carol -> {:?}", table.get(&"carol"));

    // The first items occupy *all* of their candidate buckets — that is
    // the multi-copy idea. Redundancy is visible through copy_count:
    println!("copies of alice: {}", table.copy_count(&"alice"));

    // Upserts rewrite every copy.
    table.insert("alice", 100).unwrap();
    println!("alice after update -> {:?}", table.get(&"alice"));

    // ------------------------------------------------------------------
    // 2. The on-chip counters double as a Bloom filter: absent keys are
    //    usually rejected with zero off-chip accesses.
    // ------------------------------------------------------------------
    let before = table.meter().snapshot();
    for probe in ["eve", "mallory", "trent"] {
        assert!(table.get(&probe).is_none());
    }
    let delta = table.meter().snapshot() - before;
    println!(
        "3 absent-key lookups cost {} off-chip reads (counters screened them)",
        delta.offchip_reads
    );

    // ------------------------------------------------------------------
    // 3. Deletion writes nothing off-chip: only counters change.
    // ------------------------------------------------------------------
    let mut deletable: McCuckoo<u64, String> =
        McCuckoo::new(McConfig::paper(1024, 7).with_deletion(DeletionMode::Reset));
    for k in 0u64..500 {
        deletable.insert_new(k, format!("value-{k}")).unwrap();
    }
    let before = deletable.meter().snapshot();
    for k in 0u64..500 {
        deletable.remove(&k);
    }
    let delta = deletable.meter().snapshot() - before;
    println!(
        "500 deletions: {} off-chip writes, {} off-chip reads",
        delta.offchip_writes, delta.offchip_reads
    );

    // ------------------------------------------------------------------
    // 4. The blocked variant (3 hashes × 3 slots) runs to ~99% load.
    // ------------------------------------------------------------------
    let mut blocked: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig::paper(512, 9));
    let capacity = blocked.capacity();
    let target = capacity * 98 / 100;
    for k in 0..target as u64 {
        blocked.insert_new(k, k).unwrap();
    }
    println!(
        "blocked table filled to {:.1}% load with {} items stashed",
        blocked.load_ratio() * 100.0,
        blocked.stash_len()
    );

    // ------------------------------------------------------------------
    // 5. Every table — single, blocked, and the baselines — implements
    //    the `McTable` trait, so generic code drives them all. The trait
    //    is object-safe too: `Box<dyn McTable<K, V>>` works.
    // ------------------------------------------------------------------
    fn churn<T: McTable<u64, u64>>(t: &mut T) -> (usize, f64) {
        for k in 0..300u64 {
            let _ = t.insert_new(k, k * 10);
        }
        assert_eq!(t.lookup(&7), Some(70));
        t.insert(7, 77); // upsert through the trait
        assert_eq!(t.lookup(&7), Some(77));
        t.remove(&7);
        assert!(!t.contains(&7));
        (t.len(), t.load())
    }
    let mut single: McCuckoo<u64, u64> = McCuckoo::new(McConfig::paper_with_deletion(1024, 3));
    let mut blocked2: BlockedMcCuckoo<u64, u64> = BlockedMcCuckoo::new(BlockedConfig {
        base: McConfig::paper_with_deletion(512, 3),
        slots: 3,
        aggressive_lookup: false,
    });
    let mut baseline: DaryCuckoo<u64, u64> = DaryCuckoo::new(CuckooConfig::paper(1024, 3));
    for (name, (len, load)) in [
        ("McCuckoo", churn(&mut single)),
        ("B-McCuckoo", churn(&mut blocked2)),
        ("d-ary Cuckoo", churn(&mut baseline)),
    ] {
        println!(
            "{name:<12} via McTable: {len} items at {:.1}% load",
            load * 100.0
        );
    }

    // ------------------------------------------------------------------
    // 6. Every structural invariant is checkable at runtime.
    // ------------------------------------------------------------------
    table
        .check_invariants()
        .expect("single-slot invariants hold");
    blocked.check_invariants().expect("blocked invariants hold");
    println!("all invariants verified — done");
}
