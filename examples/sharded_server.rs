//! Sharded multi-writer serving layer over the concurrent table.
//!
//! The §III.H table is one-writer-many-readers: a single writer lock
//! serialises every mutation. [`ShardedMcCuckoo`] lifts that limit by
//! routing keys to independent shards — writers touching different
//! shards proceed in parallel, and the batched entry points take each
//! shard's writer lock **once per batch** instead of once per key. This
//! example models a small KV serving node: four writer threads apply
//! batched updates for disjoint tenants while reader threads serve
//! batched point lookups, all against one shared table.
//!
//! ```sh
//! cargo run --release --example sharded_server
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mccuckoo_suite::hash_kit::SplitMix64;
use mccuckoo_suite::mccuckoo_core::{McConfig, ShardedMcCuckoo};

const SHARDS: usize = 4;
const BUCKETS_PER_SHARD: usize = 1 << 14;
const WRITERS: u64 = 4;
const READERS: usize = 2;
const ROUNDS: u64 = 400;
const BATCH: u64 = 128;

fn main() {
    let table: Arc<ShardedMcCuckoo<u64, u64>> = Arc::new(ShardedMcCuckoo::new(
        SHARDS,
        McConfig::paper(BUCKETS_PER_SHARD, 71),
    ));
    println!(
        "serving layer: {} shards × {} slots = {} total slots",
        table.shard_count(),
        table.capacity() / table.shard_count(),
        table.capacity(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let (written, updated) = std::thread::scope(|scope| {
        // Monitor: the lock-free stats layer makes a live ops dashboard
        // one `stats()` call — no locks taken, writers never stall.
        {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    let s = table.stats();
                    println!(
                        "[stats {:>5.2}s] {} inserts {} updates {} kicks | \
                         lookups {} hit / {} miss | skew {:.2} hottest shard {:?}",
                        start.elapsed().as_secs_f64(),
                        s.ops.inserts,
                        s.ops.updates,
                        s.ops.kicks,
                        s.ops.lookup_hits,
                        s.ops.lookup_misses,
                        s.occupancy_skew(),
                        s.hottest_shard(),
                    );
                }
            });
        }

        // Readers: batched point lookups over the whole key space.
        // Results are unchecked mid-churn; the post-run sweep below is
        // the correctness check.
        for r in 0..READERS {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xBEEF ^ r as u64);
                let mut served = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let keys: Vec<u64> = (0..BATCH)
                        .map(|_| rng.next_below(WRITERS * ROUNDS * BATCH))
                        .collect();
                    served += table.lookup_batch(&keys).len() as u64;
                }
                reads.fetch_add(served, Ordering::Relaxed);
            });
        }

        // Writers: each owns a tenant (a disjoint key slice) and pushes
        // one update batch per round — the shard router still spreads
        // every tenant across all shards.
        let writers: Vec<_> = (0..WRITERS)
            .map(|tenant| {
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    let base = tenant * ROUNDS * BATCH;
                    let mut fresh = 0u64;
                    let mut upserts = 0u64;
                    let mut rng = SplitMix64::new(0xFEED ^ tenant);
                    for round in 0..ROUNDS {
                        let batch: Vec<(u64, u64)> = (0..BATCH)
                            .map(|_| {
                                // ~25% of writes revisit an earlier key
                                // of the same tenant (upsert in place);
                                // clamped so tenants stay disjoint.
                                let span = (((round + 1) * BATCH * 4) / 3).min(ROUNDS * BATCH);
                                (base + rng.next_below(span), round)
                            })
                            .collect();
                        for r in table.insert_batch(&batch) {
                            match r {
                                Ok(true) => upserts += 1,
                                Ok(false) => fresh += 1,
                                Err(_) => unreachable!("load stays far below capacity"),
                            }
                        }
                    }
                    (fresh, upserts)
                })
            })
            .collect();
        let totals = writers
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(a, b), (f, u)| (a + f, b + u));
        stop.store(true, Ordering::Release);
        totals
    });

    let secs = start.elapsed().as_secs_f64();
    println!(
        "writers: {written} fresh keys + {updated} in-place updates \
         in {:.2}s ({:.2} Mops write)",
        secs,
        (written + updated) as f64 / secs / 1e6,
    );
    println!(
        "readers: {:.2} M batched lookups served concurrently",
        reads.load(Ordering::Relaxed) as f64 / 1e6,
    );

    // Post-run sweep: every tenant's live keys are present, batched
    // removal drains them, and the structural validator stays green.
    assert_eq!(table.len(), written as usize);
    let all: Vec<u64> = (0..WRITERS * ROUNDS * BATCH).collect();
    let live: Vec<u64> = all
        .iter()
        .zip(table.lookup_batch(&all))
        .filter_map(|(&k, v)| v.map(|_| k))
        .collect();
    assert_eq!(live.len(), written as usize);
    let removed = table
        .remove_batch(&live)
        .into_iter()
        .filter(Option::is_some)
        .count();
    assert_eq!(removed, written as usize);
    assert!(table.is_empty());
    table.check_invariants().expect("invariants after drain");
    println!("drained {removed} keys by batched removal; table empty and valid");

    // Final per-shard breakdown: the counters are monotonic, so they
    // still tell the whole run's story after the drain.
    let s = table.stats();
    for shard in &s.shards {
        println!(
            "  shard {}: {} inserts {} removes {} lookups ({} hit)",
            shard.shard,
            shard.ops.inserts,
            shard.ops.removes,
            shard.ops.lookup_hits + shard.ops.lookup_misses,
            shard.ops.lookup_hits,
        );
    }
    println!(
        "totals: {} ops recorded, mean probe {:.2} reads, mean batch {:.0} keys",
        s.ops.total_ops(),
        s.probe_hist.mean(),
        s.batch_hist.mean(),
    );
}
