//! Inline-deduplication fingerprint index (the ChunkStash scenario,
//! paper ref \[5\]) plus multiset indexing (§III.H).
//!
//! A storage node chunkifies incoming streams, fingerprints each chunk,
//! and asks the index: *have I stored this chunk before?* Most chunks
//! are new, so the common case is a **negative** lookup — exactly the
//! case McCuckoo's counter Bloom-filtering makes nearly free. Duplicate
//! fingerprints can legitimately repeat (same chunk written to multiple
//! volumes); [`MultisetIndex`] tracks every reference through its record
//! arena, as §III.H prescribes.
//!
//! ```sh
//! cargo run --release --example dedup_index
//! ```

use mccuckoo_suite::mccuckoo_core::{DeletionMode, McConfig};
use mccuckoo_suite::{MultisetIndex, UniqueKeys};

/// Where a deduplicated chunk lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkRef {
    volume: u32,
    offset: u64,
}

fn main() {
    const TABLE_N: usize = 1 << 16;
    const UNIQUE_CHUNKS: usize = 120_000;
    const DUP_RATE_PCT: u64 = 30; // 30% of writes are duplicates

    let mut index: MultisetIndex<u64, ChunkRef> =
        MultisetIndex::new(McConfig::paper(TABLE_N, 21).with_deletion(DeletionMode::Reset));

    // Ingest a write stream: new chunks get fresh fingerprints,
    // duplicates re-reference an earlier one.
    let mut fingerprints = UniqueKeys::new(22);
    let mut known: Vec<u64> = Vec::new();
    let mut rng = mccuckoo_suite::hash_kit::SplitMix64::new(23);
    let mut dedup_hits = 0u64;
    let mut stored = 0u64;
    let mut offset = 0u64;
    while known.len() < UNIQUE_CHUNKS {
        let dup = !known.is_empty() && rng.next_below(100) < DUP_RATE_PCT;
        let fp = if dup {
            known[rng.next_below(known.len() as u64) as usize]
        } else {
            let fp = fingerprints.next_key();
            known.push(fp);
            fp
        };
        if dup {
            dedup_hits += 1;
        } else {
            stored += 1;
        }
        let volume = (rng.next_below(8)) as u32;
        index
            .push(fp, ChunkRef { volume, offset })
            .expect("index insert");
        offset += 4096;
    }
    println!(
        "ingested {} writes: {stored} unique chunks stored, {dedup_hits} deduplicated",
        stored + dedup_hits
    );
    println!(
        "index: {} fingerprints, {} total references ({:.1}% table load)",
        index.distinct_keys(),
        index.len(),
        index.distinct_keys() as f64 / (3 * TABLE_N) as f64 * 100.0
    );

    // The hot path: is this (mostly new) chunk a duplicate? Count how
    // many of the negative probes touched memory at all.
    let probes = 100_000u64;
    let mut negative_refs = 0u64;
    for j in 0..probes {
        let fresh = fingerprints.absent_key(j);
        if index.count(&fresh) != 0 {
            negative_refs += 1;
        }
    }
    assert_eq!(negative_refs, 0, "fresh fingerprints must miss");
    println!("{probes} new-chunk probes correctly reported as not-yet-stored");

    // Garbage collection: a volume is deleted; drop its references and
    // reclaim fingerprints whose reference count hits zero.
    let victim_volume = 3u32;
    let mut reclaimed = 0u64;
    let mut retained = 0u64;
    for fp in known.clone() {
        let refs: Vec<ChunkRef> = index.get_all(&fp).copied().collect();
        if refs.iter().any(|r| r.volume == victim_volume) {
            let survivors: Vec<ChunkRef> = refs
                .iter()
                .copied()
                .filter(|r| r.volume != victim_volume)
                .collect();
            index.remove_all(&fp);
            if survivors.is_empty() {
                reclaimed += 1;
            } else {
                retained += 1;
                for r in survivors {
                    index.push(fp, r).expect("reinsert survivor");
                }
            }
        }
    }
    println!(
        "GC of volume {victim_volume}: {reclaimed} chunks reclaimed, \
         {retained} retained with surviving references"
    );
    println!(
        "index after GC: {} fingerprints, {} references",
        index.distinct_keys(),
        index.len()
    );
}
