//! Network flow table — the paper's motivating deployment.
//!
//! ASIC/FPGA packet processors keep per-flow state in huge hash tables
//! that only fit in slow off-chip memory (§I, §II of the paper). Every
//! packet triggers a lookup; flow arrivals insert; flow expiry deletes.
//! The metric that matters is *off-chip accesses per packet*. This
//! example models an edge device tracking 5-tuple flows with a
//! McCuckoo table at high load, alongside a standard cuckoo table for
//! contrast.
//!
//! ```sh
//! cargo run --release --example flow_table
//! ```

use mccuckoo_suite::cuckoo_baselines::{CuckooConfig, DaryCuckoo};
use mccuckoo_suite::hash_kit::lookup3;
use mccuckoo_suite::mccuckoo_core::{DeletionMode, McConfig, McCuckoo, McTable};
use mccuckoo_suite::workloads::Zipf;
use mccuckoo_suite::KeyHash;
use mccuckoo_suite::MemStats;
use mccuckoo_suite::PlatformModel;

/// An IPv4 5-tuple. Implements [`KeyHash`] by feeding its packed bytes
/// to the Jenkins lookup3 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FiveTuple {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    proto: u8,
}

impl FiveTuple {
    fn pack(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.proto;
        b
    }
}

impl KeyHash for FiveTuple {
    fn hash_seeded(&self, seed: u64) -> u64 {
        lookup3::hash_bytes_u64(&self.pack(), seed)
    }
}

/// Per-flow state a real device would keep.
#[derive(Debug, Clone, Default)]
struct FlowState {
    packets: u64,
    bytes: u64,
}

fn synth_flow(i: u64) -> FiveTuple {
    let h = mccuckoo_suite::hash_kit::mix64(i.wrapping_mul(0x9E37_79B9) + 1);
    FiveTuple {
        src_ip: (h >> 32) as u32,
        dst_ip: h as u32,
        src_port: (h >> 16) as u16,
        dst_port: (h >> 48) as u16 | 1,
        proto: if h & 1 == 0 { 6 } else { 17 },
    }
}

/// Replay the packet mix against any flow table. Everything goes through
/// the [`McTable`] interface, so McCuckoo and the standard-cuckoo
/// baseline run the *same* datapath code; the op stream is seeded, so
/// both tables see an identical arrival sequence.
///
/// Mix: Zipf-popular data packets + 2% scans (absent flows) + churn
/// (0.5% of packets close one flow and open another).
fn run_packets<T: McTable<FiveTuple, FlowState>>(
    table: &mut T,
    packets: u64,
    active_flows: u64,
) -> (MemStats, u64) {
    let mut zipf = Zipf::new(active_flows, 1.1, 2);
    let mut rng = mccuckoo_suite::hash_kit::SplitMix64::new(3);
    let before = table.mem_stats();
    let mut next_flow = active_flows;
    let mut opened = 0u64;
    for p in 0..packets {
        let roll = rng.next_below(1000);
        if roll < 20 {
            // Port scan: flow that does not exist.
            let probe = synth_flow(u64::MAX - p);
            assert!(table.lookup(&probe).is_none());
        } else if roll < 25 {
            // Flow churn: expire a random old flow, admit a new one.
            let old = synth_flow(rng.next_below(next_flow));
            if table.remove(&old).is_some() {
                let newf = synth_flow(next_flow);
                next_flow += 1;
                opened += 1;
                let _ = table.insert_new(newf, FlowState::default());
            }
        } else {
            // Data packet on a popular live flow.
            let f = synth_flow(zipf.sample() - 1);
            if let Some(state) = table.lookup(&f) {
                // A real datapath would update counters in place; the
                // lookup cost is what we model.
                let _ = (state.packets, state.bytes);
            }
        }
    }
    (table.mem_stats() - before, opened)
}

fn main() {
    const TABLE_N: usize = 65_536; // 3 × 64k buckets off-chip
    const ACTIVE_FLOWS: usize = 160_000; // ~81% load
    const PACKETS: u64 = 1_000_000;

    let mut mc: McCuckoo<FiveTuple, FlowState> =
        McCuckoo::new(McConfig::paper(TABLE_N, 1).with_deletion(DeletionMode::Reset));
    let mut base: DaryCuckoo<FiveTuple, FlowState> =
        DaryCuckoo::new(CuckooConfig::paper(TABLE_N, 1));

    // Install the active flow set — through the shared interface too.
    fn install<T: McTable<FiveTuple, FlowState>>(t: &mut T, flows: u64) {
        for i in 0..flows {
            let _ = t.insert_new(synth_flow(i), FlowState::default());
        }
    }
    install(&mut mc, ACTIVE_FLOWS as u64);
    install(&mut base, ACTIVE_FLOWS as u64);
    println!(
        "flow table at {:.1}% load ({} flows, {} stashed)",
        mc.load_ratio() * 100.0,
        mc.len(),
        McTable::stash_len(&mc),
    );

    let (mc_delta, opened) = run_packets(&mut mc, PACKETS, ACTIVE_FLOWS as u64);
    let (base_delta, _) = run_packets(&mut base, PACKETS, ACTIVE_FLOWS as u64);

    let per_pkt = |d: mccuckoo_suite::MemStats| d.offchip_total() as f64 / PACKETS as f64;
    println!("\nper-packet off-chip accesses over {PACKETS} packets ({opened} flows churned):");
    println!("  standard Cuckoo : {:.4}", per_pkt(base_delta));
    println!("  McCuckoo        : {:.4}", per_pkt(mc_delta));
    println!(
        "\nnote: this Zipf-skewed mix is a case the paper's uniform workloads\n\
         never exercise — the popular flows are the *earliest* inserts, which\n\
         standard cuckoo leaves sitting at their first candidate (1 probe),\n\
         while a McCuckoo item whose redundancy has decayed to one copy keeps\n\
         that copy at an arbitrary candidate (~2 probes expected). Averaged\n\
         over uniform keys McCuckoo probes less (Fig. 12); under heavy skew\n\
         toward early keys the ordering can invert, as it may here. See\n\
         EXPERIMENTS.md §Findings."
    );

    // What that means on the paper's FPGA-class line card.
    let platform = PlatformModel::stratix_v();
    let mc_ns = platform.cost(mc_delta, 32, PACKETS).ns_per_op();
    let base_ns = platform.cost(base_delta, 32, PACKETS).ns_per_op();
    println!("\nmodelled per-packet table latency (32 B flow records):");
    println!(
        "  standard Cuckoo : {base_ns:.1} ns  (~{:.2} Mpps)",
        1000.0 / base_ns
    );
    println!(
        "  McCuckoo        : {mc_ns:.1} ns  (~{:.2} Mpps)",
        1000.0 / mc_ns
    );

    mc.check_invariants().expect("flow table consistent");
}
